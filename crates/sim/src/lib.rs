//! # srs-sim
//!
//! The full-system memory simulator of the Scale-SRS reproduction — the
//! equivalent of the USIMM-based harness the paper uses for its performance
//! evaluation. It wires trace-driven cores ([`srs_cpu`]), an aggressor
//! tracker ([`srs_trackers`]), a row-swap defense ([`srs_core`]) and the
//! DDR4 memory controller ([`srs_dram`]) together, and provides the
//! experiment runner that produces the normalized-performance numbers of
//! Figures 4, 12, 14, 15 and 16.
//!
//! ## Example
//!
//! ```
//! use srs_core::DefenseKind;
//! use srs_sim::{System, SystemConfig};
//! use srs_workloads::hammer_trace;
//!
//! let mut config = SystemConfig::scaled_for_speed(DefenseKind::Srs, 1200);
//! config.cores = 1;
//! config.core.target_instructions = 2_000;
//! config.max_sim_ns = 2_000_000;
//! let trace = hammer_trace("hammer", 0x8000, 1_000, 1 << 24, 1).into_trace();
//! let result = System::new(config, trace).run();
//! assert!(result.swaps > 0, "hammering must trigger row swaps");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The simulator core sits under long-running campaigns: hot paths must not
// panic on capacity or lookup surprises — every unwrap/expect needs a
// stated invariant.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod attribution;
pub mod campaign;
pub mod config;
pub mod error;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod runner;
pub mod scenario;
pub mod search;
pub mod security;
mod share;
pub mod sink;
pub mod spec;
pub mod system;
pub mod telemetry;

pub use attribution::{AttributionReport, SubsystemTimers};
pub use campaign::{
    execution_units, merge_results, plan_shards, Campaign, CampaignError, CampaignManifest,
    CampaignReport, CampaignSink, CellFailure, CheckpointSink, MergeStats, ResumeState,
    ShardManifest,
};
pub use config::SystemConfig;
pub use error::SimError;
pub use faults::{FaultInjector, FaultsConfig, IntegrityReport};
pub use json::{Json, JsonError, ToJson};
pub use metrics::{mean_normalized, NormalizedResult, SimResult};
pub use runner::{
    normalize_against, parallel_for_each_ordered, parallel_map_ordered, run_normalized,
    run_parallel, run_workload, run_workload_attributed, suite_averages, FaultInjection, JobEvent,
    RetryPolicy, SuiteRow,
};
pub use scenario::{
    default_threads, results_for, results_where, Experiment, Scenario, ScenarioResult, UnitStats,
};
pub use search::{
    best_record, replay_best, run_search, score_from_report, score_solo, validate_search_record,
    warm_system, BestFound, ReplayOutcome, SearchError, SearchOutcome,
};
pub use security::{SecurityReport, SecurityTracker};
pub use sink::{
    validate_result_record, Fanout, JsonlWriter, MemoryCollector, ProgressSink, ResultSink,
};
pub use spec::{ConfigPatch, ExperimentSpec, Preset, SearchSpec, SpecError};
pub use system::System;
pub use telemetry::{
    EventKind, Log2Histogram, Telemetry, TelemetryConfig, TelemetryReport, TelemetrySidecarSink,
    TraceEvent,
};
