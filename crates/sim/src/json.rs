//! A small, self-contained JSON codec.
//!
//! The workspace builds without a crate registry, so the `serde` shim under
//! `crates/compat/serde` is marker-only and cannot serialize anything. This
//! module provides the actual wire format the experiment API uses: a
//! [`Json`] document value, a recursive-descent [`Json::parse`] with byte
//! offsets in errors, and compact / pretty writers. Integers are kept exact
//! over the full `u64`/`i64` range (a `seed` of `u64::MAX` round-trips
//! bit-for-bit rather than being squashed through an `f64`).
//!
//! Types that ship over this format implement [`ToJson`] (and, where a spec
//! needs to be read back, a `from_json` inherent constructor); see
//! [`crate::spec`] for the experiment-spec codec built on top.

use std::fmt;

/// One JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a hash map), so
/// encoding is deterministic run to run and diffs of emitted files are
/// stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no decimal point or exponent).
    Uint(u64),
    /// A negative integer literal.
    Int(i64),
    /// Any number written with a decimal point or exponent, or too large
    /// for the integer variants.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] document — the emission half of the codec.
pub trait ToJson {
    /// Encode `self` as a JSON value.
    fn to_json(&self) -> Json;
}

/// A parse error: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Look up a key of an object (`None` for missing keys or non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (floats with
    /// zero fraction included, so `3.0` reads back as `3`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            // `u64::MAX as f64` rounds *up* to 2^64, which does not fit;
            // the comparison must be strict or 2^64 would silently
            // saturate-clamp to u64::MAX instead of being rejected.
            Json::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Uint(u) => i64::try_from(u).ok(),
            Json::Int(i) => Some(i),
            // `i64::MAX as f64` rounds *up* to 2^63 (not representable);
            // strict comparison, as in `as_u64`. The lower bound -2^63 is
            // exactly representable, so `>=` is correct there.
            Json::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Uint(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact single-line encoding.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Uint(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is the shortest representation that parses
                    // back to the same value; force a fractional marker so
                    // the value re-parses as a Float, not an integer.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Infinity; null is the conventional
                    // stand-in and keeps emitted documents parseable.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Convenience for building object values in codec code.
#[must_use]
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Self {
        Json::Uint(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Self {
        Json::Uint(u as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Self {
        Json::Float(f)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(value: Option<T>) -> Self {
        value.map_or(Json::Null, Into::into)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container-nesting depth the parser accepts. The parser is
/// recursive-descent, so without a cap an adversarial document of 100k
/// consecutive `[`s would overflow the stack instead of erroring; no real
/// spec or report nests past a handful of levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            other => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part per the JSON grammar: a lone '0' or a nonzero-led
        // digit run ("01" is not JSON, even though Rust's parsers take it).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Invariant: every byte consumed into this span matched an ASCII
        // digit/sign/dot/exponent pattern above.
        #[allow(clippy::expect_used)]
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            // Keep integers exact; overflowing literals fall through to f64.
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>().map(|v| -v) {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number literal '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615", "1.5", "\"hi\""] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&parsed.to_compact()).unwrap(), parsed, "{text}");
        }
    }

    #[test]
    fn integers_stay_exact_beyond_f64_precision() {
        let parsed = Json::parse("9223372036854775807").unwrap();
        assert_eq!(parsed.as_u64(), Some(9_223_372_036_854_775_807));
        assert_eq!(parsed.to_compact(), "9223372036854775807");
        let max = Json::Uint(u64::MAX);
        assert_eq!(Json::parse(&max.to_compact()).unwrap(), max);
    }

    #[test]
    fn nested_documents_round_trip_compact_and_pretty() {
        let doc = obj(vec![
            ("name", "spec \"quoted\"\n".into()),
            ("values", Json::Array(vec![Json::Uint(1), Json::Float(0.5), Json::Null])),
            ("nested", obj(vec![("empty_list", Json::Array(Vec::new())), ("ok", true.into())])),
        ]);
        assert_eq!(Json::parse(&doc.to_compact()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn float_encoding_reparses_as_float() {
        let f = Json::Float(2.0);
        assert_eq!(f.to_compact(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), f);
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn accessors_read_the_right_shapes() {
        let doc = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x", "d": -4, "e": 2.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("d").and_then(Json::as_i64), Some(-4));
        assert_eq!(doc.get("d").and_then(Json::as_u64), None);
        assert_eq!(doc.get("e").and_then(Json::as_f64), Some(2.5));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes_parse() {
        let parsed = Json::parse(r#""aéb😀c\td""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aéb\u{1F600}c\td"));
    }

    #[test]
    fn float_integer_bounds_reject_out_of_range_instead_of_clamping() {
        // 2^64 parses as Float (u64::parse overflows); it must not clamp
        // to u64::MAX. 2^63 likewise must not clamp to i64::MAX.
        let two_64 = Json::parse("18446744073709551616").unwrap();
        assert!(matches!(two_64, Json::Float(_)));
        assert_eq!(two_64.as_u64(), None);
        assert_eq!(Json::Float(9_223_372_036_854_775_808.0).as_i64(), None);
        assert_eq!(Json::Float(i64::MIN as f64).as_i64(), Some(i64::MIN));
        assert_eq!(Json::Float(3.0).as_u64(), Some(3));
    }

    #[test]
    fn number_grammar_matches_json_not_rust() {
        // Rust's u64/f64 parsers accept these; the JSON grammar does not.
        for bad in ["01", "[1.]", ".5", "1e", "1e+", "-", "--1", "+1"] {
            assert!(Json::parse(bad).is_err(), "{bad} must be rejected");
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-0").unwrap().as_i64(), Some(0));
        assert_eq!(Json::parse("0.25").unwrap(), Json::Float(0.25));
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let deep_ok = format!("{}0{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&deep_ok).is_ok());
        // Many siblings at modest depth are fine: depth unwinds on exit.
        let wide = format!("[{}]", vec!["[[]]"; 1_000].join(","));
        assert!(Json::parse(&wide).is_ok());
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a": 1, "a": 2}"#).unwrap_err().message.contains("duplicate"));
    }
}
