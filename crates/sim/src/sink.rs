//! Streaming consumers of experiment results.
//!
//! [`crate::scenario::Experiment::run_with_sink`] pushes every grid cell's
//! result into a [`ResultSink`] the moment its submission-order prefix
//! completes, instead of materializing one end-of-run `Vec`. A grid of
//! thousands of cells can therefore stream to disk ([`JsonlWriter`]), drive
//! a live progress display ([`ProgressSink`]), or both at once
//! ([`Fanout`]); [`MemoryCollector`] recovers the classic collect-to-`Vec`
//! behaviour and backs [`crate::scenario::Experiment::run`].

use std::io::Write;
use std::time::Instant;

use crate::json::{Json, ToJson};
use crate::scenario::{Scenario, ScenarioResult};

/// Check one emitted result record (a parsed line of a results JSONL
/// file) against the [`ScenarioResult::to_json`] schema. Used by
/// `srs-cli validate` and by the campaign merge step
/// ([`crate::campaign::merge_results`]).
pub fn validate_result_record(record: &Json) -> Result<(), String> {
    let scenario = record.get("scenario").ok_or("missing 'scenario'")?;
    for key in ["defense", "tracker", "workload", "suite"] {
        scenario
            .get(key)
            .and_then(Json::as_str)
            .ok_or(format!("scenario.{key} must be a string"))?;
    }
    for key in ["index", "t_rh"] {
        scenario
            .get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("scenario.{key} must be an integer"))?;
    }
    let result = record.get("result").ok_or("missing 'result'")?;
    let norm = result
        .get("normalized_performance")
        .and_then(Json::as_f64)
        .ok_or("result.normalized_performance must be a number")?;
    if !(0.0..=1.5).contains(&norm) {
        return Err(format!("normalized performance {norm} out of range"));
    }
    let detail = result.get("detail").ok_or("missing 'result.detail'")?;
    for key in ["elapsed_ns", "instructions", "swaps"] {
        detail.get(key).and_then(Json::as_u64).ok_or(format!("detail.{key} must be an integer"))?;
    }
    // Attacked cells must carry a security report, benign cells a null.
    let attacked = scenario.get("attack").is_some_and(|a| !a.is_null());
    let security = detail.get("security").ok_or("missing 'detail.security'")?;
    if attacked && security.is_null() {
        return Err("attacked cell has no security report".into());
    }
    if !security.is_null() {
        security
            .get("max_victim_pressure")
            .and_then(Json::as_u64)
            .ok_or("security.max_victim_pressure must be an integer")?;
    }
    // The integrity report is null unless the cell enabled the fault model
    // (older records omit the key entirely — both are valid).
    if let Some(integrity) = detail.get("integrity") {
        if !integrity.is_null() {
            for key in ["bit_flips_injected", "corrupted_reads"] {
                integrity
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or(format!("integrity.{key} must be an integer"))?;
            }
        }
    }
    Ok(())
}

/// A streaming consumer of scenario results.
///
/// `on_result` is invoked exactly once per grid cell, strictly in
/// submission order (`results[i]` before `results[i + 1]`), which makes
/// sink output deterministic run to run. `on_scenario_start` is invoked
/// when a worker picks the cell up — those arrive in completion-race order
/// and are meant for progress reporting only.
pub trait ResultSink {
    /// A worker started simulating `scenario` (arrival order is
    /// nondeterministic; do not sequence on it).
    fn on_scenario_start(&mut self, scenario: &Scenario) {
        let _ = scenario;
    }

    /// One cell finished; called in submission order.
    fn on_result(&mut self, result: &ScenarioResult);

    /// The whole grid of `total` cells completed.
    fn on_finish(&mut self, total: usize) {
        let _ = total;
    }
}

/// Collects results into a `Vec`, preserving their submission order — the
/// sink behind [`crate::scenario::Experiment::run`].
#[derive(Debug, Default)]
pub struct MemoryCollector {
    results: Vec<ScenarioResult>,
}

impl MemoryCollector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The results collected so far, in submission order.
    #[must_use]
    pub fn results(&self) -> &[ScenarioResult] {
        &self.results
    }

    /// Consume the collector, yielding the collected results.
    #[must_use]
    pub fn into_results(self) -> Vec<ScenarioResult> {
        self.results
    }
}

impl ResultSink for MemoryCollector {
    fn on_result(&mut self, result: &ScenarioResult) {
        self.results.push(result.clone());
    }
}

/// Writes one JSON object per result — JSON Lines — through the
/// [`ToJson`] codec, so a grid streams to disk incrementally.
///
/// I/O errors are latched rather than panicking mid-experiment; check
/// [`JsonlWriter::finish`] (or [`JsonlWriter::io_error`]) after the run.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    writer: W,
    records: usize,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlWriter<W> {
    /// Stream records into `writer`.
    #[must_use]
    pub fn new(writer: W) -> Self {
        Self { writer, records: 0, error: None }
    }

    /// Number of records successfully written.
    #[must_use]
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// The first I/O error the writer hit, if any.
    #[must_use]
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the underlying writer, or the first latched error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> ResultSink for JsonlWriter<W> {
    fn on_result(&mut self, result: &ScenarioResult) {
        if self.error.is_some() {
            return;
        }
        let line = result.to_json().to_compact();
        match self.writer.write_all(line.as_bytes()).and_then(|()| self.writer.write_all(b"\n")) {
            Ok(()) => self.records += 1,
            Err(error) => self.error = Some(error),
        }
    }

    fn on_finish(&mut self, _total: usize) {
        if self.error.is_none() {
            if let Err(error) = self.writer.flush() {
                self.error = Some(error);
            }
        }
    }
}

/// Live progress and ETA, one line per completed cell — point it at
/// standard error next to a [`JsonlWriter`] on standard output or a file.
#[derive(Debug)]
pub struct ProgressSink<W: Write> {
    out: W,
    total: usize,
    offset: usize,
    finished: usize,
    begun: Instant,
}

impl<W: Write> ProgressSink<W> {
    /// Report progress towards `total` cells (use
    /// [`crate::scenario::Experiment::job_count`]) into `out`.
    #[must_use]
    pub fn new(total: usize, out: W) -> Self {
        Self { out, total, offset: 0, finished: 0, begun: Instant::now() }
    }

    /// Display `skipped` cells as already done (a resumed campaign): the
    /// counter reads `[skipped + finished / skipped + total]` while the
    /// ETA stays extrapolated from this run's `total` remaining cells
    /// only — previously-completed work must not dilute the estimate.
    #[must_use]
    pub fn with_offset(mut self, skipped: usize) -> Self {
        self.offset = skipped;
        self
    }

    /// Cells finished so far (this run; excludes the display offset).
    #[must_use]
    pub fn finished(&self) -> usize {
        self.finished
    }

    /// Consume the sink, returning its writer (e.g. to inspect a test
    /// buffer).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> ResultSink for ProgressSink<W> {
    fn on_result(&mut self, result: &ScenarioResult) {
        self.finished += 1;
        let elapsed = self.begun.elapsed().as_secs_f64();
        let eta = if self.total > self.finished {
            elapsed / self.finished as f64 * (self.total - self.finished) as f64
        } else {
            0.0
        };
        // Progress output is advisory; swallow I/O errors (a closed stderr
        // must not kill the experiment).
        let _ = writeln!(
            self.out,
            "[{}/{}] {} on {} trh={} norm={:.3} elapsed={elapsed:.1}s eta={eta:.1}s",
            self.offset + self.finished,
            self.offset + self.total,
            result.scenario.defense,
            result.scenario.workload.name,
            result.scenario.t_rh,
            result.normalized(),
        );
    }

    fn on_finish(&mut self, total: usize) {
        let elapsed = self.begun.elapsed().as_secs_f64();
        let _ = writeln!(self.out, "done: {total} cells in {elapsed:.1}s");
        let _ = self.out.flush();
    }
}

/// Forwards every event to each inner sink in order — e.g. a
/// [`JsonlWriter`] on a file plus a [`ProgressSink`] on standard error.
pub struct Fanout<'a> {
    sinks: Vec<&'a mut dyn ResultSink>,
}

impl<'a> Fanout<'a> {
    /// Fan events out to `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<&'a mut dyn ResultSink>) -> Self {
        Self { sinks }
    }
}

impl ResultSink for Fanout<'_> {
    fn on_scenario_start(&mut self, scenario: &Scenario) {
        for sink in &mut self.sinks {
            sink.on_scenario_start(scenario);
        }
    }

    fn on_result(&mut self, result: &ScenarioResult) {
        for sink in &mut self.sinks {
            sink.on_result(result);
        }
    }

    fn on_finish(&mut self, total: usize) {
        for sink in &mut self.sinks {
            sink.on_finish(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::metrics::{NormalizedResult, SimResult};

    fn result(index: usize) -> ScenarioResult {
        use srs_core::DefenseKind;
        use srs_trackers::TrackerKind;
        let workload = srs_workloads::all_workloads().remove(0);
        ScenarioResult {
            scenario: Scenario {
                index,
                defense: DefenseKind::ScaleSrs,
                t_rh: 1200,
                tracker: TrackerKind::MisraGries,
                cores: None,
                seed: None,
                attack: None,
                workload,
            },
            result: NormalizedResult {
                workload: "gups".to_string(),
                defense: "scale-srs".to_string(),
                t_rh: 1200,
                normalized_performance: 0.5,
                detail: SimResult {
                    workload: "gups".to_string(),
                    defense: "scale-srs".to_string(),
                    t_rh: 1200,
                    elapsed_ns: 10,
                    per_core_ipc: vec![1.0],
                    instructions: 100,
                    controller: srs_dram::ControllerStats::default(),
                    swaps: 1,
                    rows_pinned: 0,
                    pinned_hits: 0,
                    max_row_activations_in_window: 3,
                    security: None,
                    integrity: None,
                    telemetry: None,
                },
            },
        }
    }

    #[test]
    fn collector_preserves_result_order() {
        let mut collector = MemoryCollector::new();
        for i in 0..3 {
            collector.on_result(&result(i));
        }
        collector.on_finish(3);
        let results = collector.into_results();
        let indices: Vec<usize> = results.iter().map(|r| r.scenario.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn jsonl_writer_emits_one_parseable_object_per_result() {
        let mut writer = JsonlWriter::new(Vec::new());
        writer.on_result(&result(0));
        writer.on_result(&result(1));
        writer.on_finish(2);
        assert_eq!(writer.records_written(), 2);
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let record = Json::parse(line).unwrap();
            let scenario = record.get("scenario").expect("scenario field");
            assert_eq!(scenario.get("index").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(scenario.get("defense").and_then(Json::as_str), Some("scale-srs"));
            assert!(record.get("result").is_some());
        }
    }

    #[test]
    fn progress_counts_and_fanout_forwards() {
        let mut progress = ProgressSink::new(2, Vec::new());
        let mut collector = MemoryCollector::new();
        {
            let mut fanout = Fanout::new(vec![&mut progress, &mut collector]);
            fanout.on_scenario_start(&result(0).scenario);
            fanout.on_result(&result(0));
            fanout.on_result(&result(1));
            fanout.on_finish(2);
        }
        assert_eq!(progress.finished(), 2);
        assert_eq!(collector.results().len(), 2);
        let text = String::from_utf8(progress.out).unwrap();
        assert!(text.contains("[1/2]") && text.contains("[2/2]") && text.contains("done: 2"));
    }

    #[test]
    fn progress_offset_shifts_the_counter_but_not_the_eta_basis() {
        // A resumed campaign with 10 cells already done and 2 remaining:
        // the display counts 11/12 and 12/12, but the ETA is extrapolated
        // from this run's cells only (after the last one it must be 0).
        let mut progress = ProgressSink::new(2, Vec::new()).with_offset(10);
        progress.on_result(&result(10));
        progress.on_result(&result(11));
        assert_eq!(progress.finished(), 2);
        let text = String::from_utf8(progress.out).unwrap();
        assert!(text.contains("[11/12]") && text.contains("[12/12]"), "offset display: {text}");
        let last = text.lines().last().unwrap();
        assert!(last.contains("eta=0.0s"), "remaining-cells ETA hits zero: {last}");
    }

    #[test]
    fn result_record_schema_rejects_broken_records() {
        let record = result(0).to_json();
        validate_result_record(&record).expect("real records pass the schema");
        let broken = Json::parse(r#"{"scenario": {"index": 0}}"#).unwrap();
        assert!(validate_result_record(&broken).is_err());
    }
}
