//! Fault-tolerant campaign execution: deterministic sharding,
//! checkpoint/resume, and crash-safe result streams.
//!
//! A paper-sized grid is hours of simulation; run as one monolithic
//! process, any panic, OOM or kill throws away every completed cell. This
//! module turns a grid run into a **campaign** that survives interruption:
//!
//! * [`plan_shards`] deterministically splits a spec's grid into N
//!   [`ShardManifest`]s along its [`execution_units`] — shared-prefix
//!   trunk groups are never split, so sharding cannot break snapshot
//!   sharing and every shard's cells are bit-identical to the same cells
//!   of an unsharded run.
//! * [`CheckpointSink`] wraps the JSONL stream with an atomically updated
//!   [`CampaignManifest`] recording exactly which cells are durably on
//!   disk; after a crash, [`CheckpointSink::resume`] truncates a torn
//!   final record and the campaign re-runs only what is missing.
//! * [`Campaign`] executes a (possibly restricted) cell set with per-unit
//!   panic isolation and bounded retry ([`crate::runner::RetryPolicy`]);
//!   persistently failing cells become [`CellFailure`] records in the
//!   manifest instead of aborting the run.
//! * [`merge_results`] validates shard outputs (schema, no gaps, no
//!   duplicates) and merges them back into one submission-ordered result
//!   set, byte-identical to an uninterrupted unsharded run.

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::json::{obj, Json, ToJson};
use crate::runner::{FaultInjection, RetryPolicy};
use crate::scenario::{Experiment, Scenario, ScenarioResult, UnitStats};
use crate::sink::validate_result_record;
use crate::spec::{ExperimentSpec, SpecError};

/// A cell that exhausted its retry budget. Recorded in the
/// [`CampaignManifest`] so a later `--resume` retries exactly these cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Grid index of the failed cell.
    pub index: usize,
    /// Attempts made before giving up (≥ 1).
    pub attempts: u32,
    /// The panic message of the final attempt.
    pub error: String,
}

impl ToJson for CellFailure {
    fn to_json(&self) -> Json {
        obj(vec![
            ("index", self.index.into()),
            ("attempts", u64::from(self.attempts).into()),
            ("error", self.error.as_str().into()),
        ])
    }
}

impl CellFailure {
    fn from_json(json: &Json) -> Result<Self, String> {
        let index =
            json.get("index").and_then(Json::as_u64).ok_or("failure.index must be an integer")?
                as usize;
        let attempts = json
            .get("attempts")
            .and_then(Json::as_u64)
            .ok_or("failure.attempts must be an integer")? as u32;
        let error =
            json.get("error").and_then(Json::as_str).ok_or("failure.error must be a string")?;
        Ok(Self { index, attempts, error: error.to_string() })
    }
}

/// What a [`Campaign::run`] did, delivered to
/// [`CampaignSink::on_finish`] and returned to the caller.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cells in the full experiment grid.
    pub total_cells: usize,
    /// Cells this run was responsible for (its shard, minus none).
    pub planned: usize,
    /// Cells skipped because a previous run already completed them.
    pub skipped: usize,
    /// Cells that finished and streamed a result this run.
    pub completed: usize,
    /// Cells that exhausted their retry budget this run.
    pub failed: Vec<CellFailure>,
}

impl CampaignReport {
    /// `true` when every planned cell completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.skipped + self.completed == self.planned + self.skipped
    }
}

/// A streaming consumer of campaign outcomes — [`crate::sink::ResultSink`]
/// extended with per-cell failure delivery.
///
/// `on_result` and `on_cell_failed` together are invoked exactly once per
/// executed cell, strictly in ascending cell-index order, which keeps
/// campaign output deterministic run to run. `on_scenario_start` arrives in
/// completion-race order and never fires for skipped cells.
pub trait CampaignSink {
    /// A worker started simulating `scenario` (arrival order is
    /// nondeterministic; do not sequence on it).
    fn on_scenario_start(&mut self, scenario: &Scenario) {
        let _ = scenario;
    }

    /// One cell finished; called in ascending cell-index order.
    fn on_result(&mut self, result: &ScenarioResult);

    /// One cell exhausted its retry budget; called at the cell's slot in
    /// the same ascending order as `on_result`.
    fn on_cell_failed(&mut self, failure: &CellFailure) {
        let _ = failure;
    }

    /// One execution unit finished (successfully or not), reporting its
    /// wall-clock duration and attempt count; called once per unit in unit
    /// submission order. Wall times are machine-dependent — treat them as
    /// profiling data, never as results.
    fn on_unit_stats(&mut self, stats: &UnitStats) {
        let _ = stats;
    }

    /// The campaign drained (successfully or degraded).
    fn on_finish(&mut self, report: &CampaignReport) {
        let _ = report;
    }
}

/// The deterministic execution units of an experiment's grid: each unit is
/// a shared-prefix trunk group or a singleton solo cell, disjoint, covering
/// the grid, ordered by first cell index. Units are the atoms of
/// [`plan_shards`] — a unit never spans two shards.
#[must_use]
pub fn execution_units(experiment: &Experiment) -> Vec<Vec<usize>> {
    let scenarios = experiment.scenarios();
    let configs: Vec<crate::config::SystemConfig> =
        scenarios.iter().map(|s| experiment.config_for(s)).collect();
    experiment.plan_units(&scenarios, &configs)
}

/// A restartable, failure-isolated run over an experiment's grid (or a
/// shard of it).
///
/// ```no_run
/// use srs_sim::campaign::{Campaign, CampaignSink, CellFailure};
/// use srs_sim::scenario::Experiment;
///
/// struct Count(usize);
/// impl CampaignSink for Count {
///     fn on_result(&mut self, _: &srs_sim::ScenarioResult) {
///         self.0 += 1;
///     }
/// }
///
/// let experiment = Experiment::new();
/// let mut sink = Count(0);
/// let report = Campaign::new(experiment).run(&mut sink);
/// assert_eq!(report.failed.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    experiment: Experiment,
    cells: Option<Vec<usize>>,
    completed: Vec<usize>,
    retry: RetryPolicy,
    fault: Option<FaultInjection>,
    attribution: Option<std::sync::Arc<std::sync::Mutex<crate::attribution::AttributionReport>>>,
}

impl Campaign {
    /// A campaign over `experiment`'s whole grid with the default retry
    /// policy and no skip-list.
    #[must_use]
    pub fn new(experiment: Experiment) -> Self {
        Self {
            experiment,
            cells: None,
            completed: Vec::new(),
            retry: RetryPolicy::default(),
            fault: None,
            attribution: None,
        }
    }

    /// Restrict the campaign to these grid cell indices (a shard).
    #[must_use]
    pub fn with_cells(mut self, cells: Vec<usize>) -> Self {
        self.cells = Some(cells);
        self
    }

    /// Skip these already-completed cells (resume). Skipped cells produce
    /// no sink events at all.
    #[must_use]
    pub fn with_completed(mut self, completed: Vec<usize>) -> Self {
        self.completed = completed;
        self
    }

    /// Override the per-unit retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Inject a deterministic fault (crash/retry tests; see
    /// [`FaultInjection::from_env`]).
    #[must_use]
    pub fn with_fault(mut self, fault: Option<FaultInjection>) -> Self {
        self.fault = fault;
        self
    }

    /// Arm per-subsystem wall-time attribution: every defended solo cell
    /// runs with the stopwatches on and merges its breakdown into the
    /// shared report. Results stay bit-identical; wall time is perturbed
    /// by a few percent, so arm this for breakdown passes only. Callers
    /// wanting full coverage should also disable prefix sharing
    /// ([`Experiment::with_share_prefixes`]) — shared groups are not
    /// attributed.
    #[must_use]
    pub fn with_attribution(
        mut self,
        report: std::sync::Arc<std::sync::Mutex<crate::attribution::AttributionReport>>,
    ) -> Self {
        self.attribution = Some(report);
        self
    }

    /// The underlying experiment.
    #[must_use]
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The sorted cell indices this run will actually execute: the
    /// campaign's cell set minus the skip-list.
    #[must_use]
    pub fn planned(&self) -> Vec<usize> {
        let done: fxhash::FxHashSet<usize> = self.completed.iter().copied().collect();
        let mut planned: Vec<usize> = match &self.cells {
            Some(cells) => cells.iter().copied().filter(|i| !done.contains(i)).collect(),
            None => (0..self.experiment.job_count()).filter(|i| !done.contains(i)).collect(),
        };
        planned.sort_unstable();
        planned.dedup();
        planned
    }

    /// Execute the planned cells under panic isolation, streaming each
    /// outcome into `sink` in ascending cell-index order. A unit that
    /// keeps panicking past the retry budget reports a [`CellFailure`] for
    /// each of its cells and the campaign keeps going.
    pub fn run(&self, sink: &mut dyn CampaignSink) -> CampaignReport {
        let planned = self.planned();
        let skipped = match &self.cells {
            Some(cells) => {
                let mut cells: Vec<usize> = cells.clone();
                cells.sort_unstable();
                cells.dedup();
                cells.len() - planned.len()
            }
            None => self.experiment.job_count() - planned.len(),
        };
        let opts = crate::scenario::ExecOptions {
            subset: Some(planned.clone()),
            isolate: Some(self.retry.clone()),
            fault: self.fault.clone(),
            attribution: self.attribution.clone(),
        };
        let mut completed = 0usize;
        let mut failed: Vec<CellFailure> = Vec::new();
        let ran = self.experiment.run_streaming_opts(&opts, |event| match event {
            crate::scenario::ExecEvent::Started(scenario) => sink.on_scenario_start(scenario),
            crate::scenario::ExecEvent::Finished(result) => {
                completed += 1;
                sink.on_result(&result);
            }
            crate::scenario::ExecEvent::Failed(failure) => {
                sink.on_cell_failed(&failure);
                failed.push(failure);
            }
            crate::scenario::ExecEvent::UnitDone(stats) => sink.on_unit_stats(&stats),
        });
        debug_assert_eq!(ran, planned.len(), "executor ran a different cell set than planned");
        let report = CampaignReport {
            total_cells: self.experiment.job_count(),
            planned: planned.len(),
            skipped,
            completed,
            failed,
        };
        sink.on_finish(&report);
        report
    }
}

/// An error from the campaign persistence layer (manifests, checkpointed
/// output, merge).
#[derive(Debug)]
pub enum CampaignError {
    /// An I/O operation failed; the message names the path.
    Io(String),
    /// A manifest or results file exists but cannot be decoded; the
    /// message names the path and offset or line.
    Corrupt(String),
    /// Inputs disagree with each other or with the campaign being resumed
    /// (wrong campaign name, wrong cell set, gaps, duplicates).
    Mismatch(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(message) | Self::Corrupt(message) | Self::Mismatch(message) => {
                f.write_str(message)
            }
        }
    }
}

impl std::error::Error for CampaignError {}

fn io_err(path: &Path, action: &str, error: &std::io::Error) -> CampaignError {
    CampaignError::Io(format!("cannot {action} {}: {error}", path.display()))
}

/// Encode a sorted, deduplicated cell list as inclusive `[first, last]`
/// ranges — `[0,1,2,3,7]` becomes `[[0,3],[7,7]]` — so a manifest stays
/// O(ranges), not O(cells), on disk.
fn encode_ranges(sorted_cells: &[usize]) -> Json {
    let mut ranges: Vec<Json> = Vec::new();
    let mut cells = sorted_cells.iter().copied();
    if let Some(first) = cells.next() {
        let (mut lo, mut hi) = (first, first);
        for cell in cells {
            if cell == hi + 1 {
                hi = cell;
            } else {
                ranges.push(Json::Array(vec![lo.into(), hi.into()]));
                (lo, hi) = (cell, cell);
            }
        }
        ranges.push(Json::Array(vec![lo.into(), hi.into()]));
    }
    Json::Array(ranges)
}

/// Decode the [`encode_ranges`] form back into a sorted cell list.
fn decode_ranges(field: &str, json: &Json) -> Result<Vec<usize>, String> {
    let ranges = json.as_array().ok_or(format!("{field} must be an array of [first, last]"))?;
    let mut cells = Vec::new();
    for range in ranges {
        let pair = range
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or(format!("{field} entries must be two-element [first, last] arrays"))?;
        let lo = pair[0].as_u64().ok_or(format!("{field} bounds must be integers"))? as usize;
        let hi = pair[1].as_u64().ok_or(format!("{field} bounds must be integers"))? as usize;
        if hi < lo {
            return Err(format!("{field} range [{lo}, {hi}] is inverted"));
        }
        cells.extend(lo..=hi);
    }
    let sorted = cells.windows(2).all(|w| w[0] < w[1]);
    if !sorted {
        return Err(format!("{field} ranges must be sorted and disjoint"));
    }
    Ok(cells)
}

/// One shard of a campaign: a spec plus the cell subset this shard is
/// responsible for. Produced by [`plan_shards`], written as
/// `<stem>.shard<k>.json`, and accepted by `srs-cli run` in place of a
/// spec (detected by the `shard_index` key — see
/// [`ShardManifest::is_shard_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// The campaign (spec) name all sibling shards share.
    pub campaign: String,
    /// This shard's position in `0..shard_count`.
    pub shard_index: usize,
    /// Number of sibling shards the grid was split into.
    pub shard_count: usize,
    /// Cells in the full experiment grid (all shards together).
    pub total_cells: usize,
    /// Sorted grid cell indices this shard runs.
    pub cells: Vec<usize>,
    /// The full experiment spec, inlined so a shard file is
    /// self-contained (shippable to another machine on its own).
    pub spec: ExperimentSpec,
}

impl ToJson for ShardManifest {
    fn to_json(&self) -> Json {
        obj(vec![
            ("campaign", self.campaign.as_str().into()),
            ("shard_index", self.shard_index.into()),
            ("shard_count", self.shard_count.into()),
            ("total_cells", self.total_cells.into()),
            ("cells", encode_ranges(&self.cells)),
            ("spec", self.spec.to_json()),
        ])
    }
}

impl ShardManifest {
    /// Does this parsed document look like a shard manifest rather than a
    /// plain spec? (Specs reject unknown keys, so the two cannot be
    /// confused.)
    #[must_use]
    pub fn is_shard_json(json: &Json) -> bool {
        json.get("shard_index").is_some()
    }

    /// Decode a shard manifest; `origin` names the source in errors.
    pub fn from_json(origin: &str, json: &Json) -> Result<Self, CampaignError> {
        let corrupt = |message: String| CampaignError::Corrupt(format!("{origin}: {message}"));
        let str_of = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(ToString::to_string)
                .ok_or_else(|| corrupt(format!("'{key}' must be a string")))
        };
        let int_of = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| corrupt(format!("'{key}' must be an integer")))
        };
        let cells = decode_ranges(
            "cells",
            json.get("cells").ok_or_else(|| corrupt("missing 'cells'".to_string()))?,
        )
        .map_err(corrupt)?;
        let spec_json = json.get("spec").ok_or_else(|| corrupt("missing 'spec'".to_string()))?;
        let spec = ExperimentSpec::from_json(spec_json)
            .map_err(|e| corrupt(format!("embedded spec: {e}")))?;
        Ok(Self {
            campaign: str_of("campaign")?,
            shard_index: int_of("shard_index")?,
            shard_count: int_of("shard_count")?,
            total_cells: int_of("total_cells")?,
            cells,
            spec,
        })
    }

    /// Parse a shard manifest from its JSON text form.
    pub fn parse(origin: &str, text: &str) -> Result<Self, CampaignError> {
        let json =
            Json::parse(text).map_err(|e| CampaignError::Corrupt(format!("{origin}: {e}")))?;
        Self::from_json(origin, &json)
    }
}

/// Deterministically split `spec`'s grid into at most `shards` shard
/// manifests.
///
/// The split is along [`execution_units`] — a shared-prefix trunk group
/// never spans two shards, so each shard's cells remain bit-identical to
/// the same cells of an unsharded run. Units are assigned largest-first to
/// the least-loaded shard (ties broken by lowest shard index), which is
/// fully deterministic: planning the same spec twice yields identical
/// manifests. Fewer units than `shards` yields fewer (non-empty) shards.
pub fn plan_shards(spec: &ExperimentSpec, shards: usize) -> Result<Vec<ShardManifest>, SpecError> {
    let experiment = spec.to_experiment()?;
    let units = execution_units(&experiment);
    let total_cells = experiment.job_count();
    let count = shards.max(1).min(units.len().max(1));
    // Largest unit first (ties by first cell index, which is unique).
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(units[u].len()), units[u][0]));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); count];
    let mut load = vec![0usize; count];
    for u in order {
        // Invariant: `count` is clamped to >= 1 by the caller, so the
        // minimum over `0..count` always exists.
        #[allow(clippy::expect_used)]
        let bin = (0..count).min_by_key(|&b| (load[b], b)).expect("count >= 1");
        bins[bin].extend(units[u].iter().copied());
        load[bin] += units[u].len();
    }
    Ok(bins
        .into_iter()
        .enumerate()
        .map(|(shard_index, mut cells)| {
            cells.sort_unstable();
            ShardManifest {
                campaign: spec.name.clone(),
                shard_index,
                shard_count: count,
                total_cells,
                cells,
                spec: spec.clone(),
            }
        })
        .collect())
}

/// The durable record of a campaign run's progress, stored next to its
/// output as `<out>.manifest.json` and rewritten atomically
/// (tmp-file + rename) after every committed record — at any instant the
/// manifest on disk describes a prefix of the output that is actually
/// there.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignManifest {
    /// The campaign (spec) name, for resume cross-checking.
    pub campaign: String,
    /// Cells in the full experiment grid.
    pub total_cells: usize,
    /// Sorted cell indices this run is responsible for.
    pub cells: Vec<usize>,
    /// Sorted cell indices whose records are durably in the output.
    pub completed: Vec<usize>,
    /// Cells that exhausted their retry budget (retried on resume).
    pub failed: Vec<CellFailure>,
    /// Output-file length covering exactly the `completed` records; any
    /// bytes past this offset are a torn record from a crash and are
    /// truncated on resume.
    pub bytes_committed: u64,
    /// Per-unit wall durations and attempt counts, appended as units
    /// finish. Profiling data (machine-dependent, not part of results);
    /// absent in manifests written before this field existed.
    pub timings: Vec<UnitStats>,
}

impl ToJson for CampaignManifest {
    fn to_json(&self) -> Json {
        obj(vec![
            ("campaign", self.campaign.as_str().into()),
            ("total_cells", self.total_cells.into()),
            ("cells", encode_ranges(&self.cells)),
            ("completed", encode_ranges(&self.completed)),
            ("failed", Json::Array(self.failed.iter().map(ToJson::to_json).collect())),
            ("bytes_committed", self.bytes_committed.into()),
            ("timings", Json::Array(self.timings.iter().map(ToJson::to_json).collect())),
        ])
    }
}

impl CampaignManifest {
    /// A fresh manifest for a run responsible for `cells` (sorted).
    #[must_use]
    pub fn new(campaign: &str, total_cells: usize, cells: Vec<usize>) -> Self {
        Self {
            campaign: campaign.to_string(),
            total_cells,
            cells,
            completed: Vec::new(),
            failed: Vec::new(),
            bytes_committed: 0,
            timings: Vec::new(),
        }
    }

    /// The manifest path for an output file: `<out>.manifest.json`.
    #[must_use]
    pub fn path_for(out: &Path) -> PathBuf {
        PathBuf::from(format!("{}.manifest.json", out.display()))
    }

    /// Decode a manifest; `origin` names the source in errors.
    pub fn from_json(origin: &str, json: &Json) -> Result<Self, CampaignError> {
        let corrupt = |message: String| CampaignError::Corrupt(format!("{origin}: {message}"));
        let campaign = json
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("'campaign' must be a string".to_string()))?
            .to_string();
        let total_cells = json
            .get("total_cells")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("'total_cells' must be an integer".to_string()))?
            as usize;
        let cells = decode_ranges(
            "cells",
            json.get("cells").ok_or_else(|| corrupt("missing 'cells'".to_string()))?,
        )
        .map_err(&corrupt)?;
        let completed = decode_ranges(
            "completed",
            json.get("completed").ok_or_else(|| corrupt("missing 'completed'".to_string()))?,
        )
        .map_err(&corrupt)?;
        let failed = json
            .get("failed")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("'failed' must be an array".to_string()))?
            .iter()
            .map(|f| CellFailure::from_json(f).map_err(&corrupt))
            .collect::<Result<Vec<_>, _>>()?;
        let bytes_committed = json
            .get("bytes_committed")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("'bytes_committed' must be an integer".to_string()))?;
        // Tolerate manifests written before timings existed.
        let timings = match json.get("timings") {
            None | Some(Json::Null) => Vec::new(),
            Some(value) => value
                .as_array()
                .ok_or_else(|| corrupt("'timings' must be an array".to_string()))?
                .iter()
                .map(|t| UnitStats::from_json(t).map_err(|m| corrupt(m.to_string())))
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(Self { campaign, total_cells, cells, completed, failed, bytes_committed, timings })
    }

    /// Load a manifest from disk.
    pub fn load(path: &Path) -> Result<Self, CampaignError> {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, "read", &e))?;
        let origin = path.display().to_string();
        let json =
            Json::parse(&text).map_err(|e| CampaignError::Corrupt(format!("{origin}: {e}")))?;
        Self::from_json(&origin, &json)
    }

    /// Persist the manifest atomically: write `<path>.tmp`, then rename
    /// over `path`, so a crash at any instant leaves either the old or the
    /// new manifest — never a torn one.
    pub fn save(&self, path: &Path) -> Result<(), CampaignError> {
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        let mut text = self.to_json().to_pretty();
        text.push('\n');
        std::fs::write(&tmp, text).map_err(|e| io_err(&tmp, "write", &e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename manifest over", &e))
    }
}

/// What [`CheckpointSink::resume`] found on disk.
#[derive(Debug, Clone)]
pub struct ResumeState {
    /// Cells the previous run(s) already committed; pass to
    /// [`Campaign::with_completed`].
    pub completed: Vec<usize>,
    /// Failures recorded by the previous run, now cleared for retry.
    pub retried_failures: Vec<CellFailure>,
    /// Torn-record bytes truncated from the end of the output file
    /// (non-zero exactly when the previous run died mid-write).
    pub truncated_bytes: u64,
}

/// A crash-safe JSONL result stream: every committed record is mirrored
/// into an atomically updated [`CampaignManifest`], so the pair
/// (output, manifest) can always be resumed.
///
/// The write protocol per record: append the JSON line, flush, then
/// atomically rewrite the manifest with the cell marked completed and
/// `bytes_committed` advanced past the line. A crash between the two
/// leaves a record on disk that the manifest does not claim — resume
/// truncates the output back to `bytes_committed` and re-runs that cell.
///
/// For crash-recovery tests, the environment variable
/// `SRS_CAMPAIGN_CRASH_AFTER=N` makes the sink write only the first half
/// of the N-th record of the current process, flush, and abort —
/// deterministically manufacturing a torn final record.
#[derive(Debug)]
pub struct CheckpointSink {
    out_path: PathBuf,
    manifest_path: PathBuf,
    manifest: CampaignManifest,
    writer: BufWriter<std::fs::File>,
    /// Highest cell index already in the file when this run started;
    /// appending below it means the file needs an index-order repair pass.
    prev_max: Option<usize>,
    needs_sort: bool,
    records_this_run: usize,
    crash_after: Option<usize>,
    error: Option<String>,
}

impl CheckpointSink {
    /// Start a fresh campaign output at `out` (truncating it) for a run
    /// responsible for `cells`, writing `<out>.manifest.json` beside it.
    pub fn create(
        out: &Path,
        campaign: &str,
        total_cells: usize,
        cells: Vec<usize>,
    ) -> Result<Self, CampaignError> {
        let file = std::fs::File::create(out).map_err(|e| io_err(out, "create", &e))?;
        let manifest_path = CampaignManifest::path_for(out);
        let manifest = CampaignManifest::new(campaign, total_cells, cells);
        manifest.save(&manifest_path)?;
        Ok(Self {
            out_path: out.to_path_buf(),
            manifest_path,
            manifest,
            writer: BufWriter::new(file),
            prev_max: None,
            needs_sort: false,
            records_this_run: 0,
            crash_after: crash_after_from_env(),
            error: None,
        })
    }

    /// Resume a crashed or interrupted campaign at `out`: load the
    /// manifest, verify it belongs to the same campaign and cell set,
    /// truncate any torn final record past `bytes_committed`, clear
    /// recorded failures for retry, and reopen the output for append.
    pub fn resume(
        out: &Path,
        campaign: &str,
        total_cells: usize,
        cells: &[usize],
    ) -> Result<(Self, ResumeState), CampaignError> {
        let manifest_path = CampaignManifest::path_for(out);
        let mut manifest = CampaignManifest::load(&manifest_path)?;
        if manifest.campaign != campaign {
            return Err(CampaignError::Mismatch(format!(
                "{} records campaign '{}', not '{campaign}'",
                manifest_path.display(),
                manifest.campaign
            )));
        }
        if manifest.total_cells != total_cells || manifest.cells != cells {
            return Err(CampaignError::Mismatch(format!(
                "{} was written for a different cell set ({} of {} grid cells); \
                 refusing to mix campaigns",
                manifest_path.display(),
                manifest.cells.len(),
                manifest.total_cells
            )));
        }
        let on_disk = std::fs::metadata(out).map_err(|e| io_err(out, "stat", &e))?.len();
        if on_disk < manifest.bytes_committed {
            return Err(CampaignError::Corrupt(format!(
                "{} is {on_disk} bytes but its manifest committed {}; the output was \
                 truncated externally",
                out.display(),
                manifest.bytes_committed
            )));
        }
        let truncated_bytes = on_disk - manifest.bytes_committed;
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(out)
            .map_err(|e| io_err(out, "open", &e))?;
        file.set_len(manifest.bytes_committed).map_err(|e| io_err(out, "truncate", &e))?;
        drop(file);
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(out)
            .map_err(|e| io_err(out, "open", &e))?;
        let retried_failures = std::mem::take(&mut manifest.failed);
        let state = ResumeState {
            completed: manifest.completed.clone(),
            retried_failures,
            truncated_bytes,
        };
        let prev_max = manifest.completed.iter().copied().max();
        let sink = Self {
            out_path: out.to_path_buf(),
            manifest_path,
            manifest,
            writer: BufWriter::new(file),
            prev_max,
            needs_sort: false,
            records_this_run: 0,
            crash_after: crash_after_from_env(),
            error: None,
        };
        Ok((sink, state))
    }

    /// Records committed across all runs of this campaign output.
    #[must_use]
    pub fn records_committed(&self) -> usize {
        self.manifest.completed.len()
    }

    /// Close the stream: repair record order if resume appended
    /// lower-index cells behind higher ones (rewrite sorted by
    /// `scenario.index`, atomically), persist the final manifest, and
    /// report the first latched I/O error if any.
    pub fn finish(mut self) -> Result<CampaignManifest, CampaignError> {
        if let Some(message) = self.error {
            return Err(CampaignError::Io(message));
        }
        self.writer.flush().map_err(|e| io_err(&self.out_path, "flush", &e))?;
        drop(self.writer);
        if self.needs_sort {
            sort_results_file(&self.out_path)?;
        }
        self.manifest.save(&self.manifest_path)?;
        Ok(self.manifest)
    }
}

impl CampaignSink for CheckpointSink {
    fn on_result(&mut self, result: &ScenarioResult) {
        if self.error.is_some() {
            return;
        }
        let index = result.scenario.index;
        let mut line = result.to_json().to_compact();
        line.push('\n');
        if self.crash_after == Some(self.records_this_run) {
            // Crash-recovery test hook: manufacture a torn final record.
            let _ = self.writer.write_all(&line.as_bytes()[..line.len() / 2]);
            let _ = self.writer.flush();
            std::process::abort();
        }
        match self.writer.write_all(line.as_bytes()).and_then(|()| self.writer.flush()) {
            Ok(()) => {
                self.records_this_run += 1;
                if self.prev_max.is_some_and(|max| index < max) {
                    self.needs_sort = true;
                }
                self.manifest.bytes_committed += line.len() as u64;
                let slot = self.manifest.completed.partition_point(|&c| c < index);
                self.manifest.completed.insert(slot, index);
                if let Err(e) = self.manifest.save(&self.manifest_path) {
                    self.error = Some(e.to_string());
                }
            }
            Err(e) => {
                self.error = Some(format!("writing {}: {e}", self.out_path.display()));
            }
        }
    }

    fn on_cell_failed(&mut self, failure: &CellFailure) {
        if self.error.is_some() {
            return;
        }
        self.manifest.failed.push(failure.clone());
        if let Err(e) = self.manifest.save(&self.manifest_path) {
            self.error = Some(e.to_string());
        }
    }

    fn on_unit_stats(&mut self, stats: &UnitStats) {
        if self.error.is_some() {
            return;
        }
        // Timings are profiling data; they ride the next manifest save
        // (every unit emits cell outcomes, each of which saves) rather
        // than forcing an extra atomic rewrite per unit.
        self.manifest.timings.push(stats.clone());
    }
}

fn crash_after_from_env() -> Option<usize> {
    std::env::var("SRS_CAMPAIGN_CRASH_AFTER").ok()?.trim().parse().ok()
}

/// Rewrite a results file with its lines sorted by `scenario.index`
/// (atomically, via tmp + rename). Lines are moved verbatim, so the
/// repaired file is byte-identical to one written in order.
fn sort_results_file(path: &Path) -> Result<(), CampaignError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, "read", &e))?;
    let mut lines: Vec<(usize, &str)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let index = Json::parse(line)
            .ok()
            .and_then(|r| r.get("scenario").and_then(|s| s.get("index").and_then(Json::as_u64)))
            .ok_or_else(|| {
                CampaignError::Corrupt(format!(
                    "{}:{}: not a result record; cannot repair order",
                    path.display(),
                    lineno + 1
                ))
            })? as usize;
        lines.push((index, line));
    }
    lines.sort_by_key(|&(index, _)| index);
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut sorted = String::with_capacity(text.len());
    for (_, line) in &lines {
        sorted.push_str(line);
        sorted.push('\n');
    }
    std::fs::write(&tmp, sorted).map_err(|e| io_err(&tmp, "write", &e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename repaired output over", &e))
}

/// What [`merge_results`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Input files consumed.
    pub inputs: usize,
    /// Records in the merged output (== the grid's cell count).
    pub records: usize,
}

/// Validate and merge shard result files into one submission-ordered
/// result set at `out`.
///
/// Every line of every input must parse and pass the result-record schema;
/// the union of cell indices must be exactly `0..n` with no duplicates
/// (a duplicate means two shards ran the same cell; a gap means a shard is
/// missing or incomplete). Lines are moved byte-verbatim, so the merged
/// file is byte-identical to an uninterrupted unsharded run's output.
pub fn merge_results(inputs: &[PathBuf], out: &Path) -> Result<MergeStats, CampaignError> {
    let mut records: Vec<(usize, String)> = Vec::new();
    let mut origin_of: fxhash::FxHashMap<usize, usize> = fxhash::FxHashMap::default();
    for (input_no, input) in inputs.iter().enumerate() {
        let text = std::fs::read_to_string(input).map_err(|e| io_err(input, "read", &e))?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let at = format!("{}:{}", input.display(), lineno + 1);
            let record =
                Json::parse(line).map_err(|e| CampaignError::Corrupt(format!("{at}: {e}")))?;
            validate_result_record(&record)
                .map_err(|message| CampaignError::Corrupt(format!("{at}: {message}")))?;
            // Invariant: `validate_result_record` above already rejected
            // any record without a numeric `scenario.index`.
            #[allow(clippy::expect_used)]
            let index = record
                .get("scenario")
                .and_then(|s| s.get("index"))
                .and_then(Json::as_u64)
                .expect("schema guarantees scenario.index") as usize;
            if let Some(&other) = origin_of.get(&index) {
                return Err(CampaignError::Mismatch(format!(
                    "cell {index} appears in both {} and {}: shards overlap",
                    inputs[other].display(),
                    input.display()
                )));
            }
            origin_of.insert(index, input_no);
            records.push((index, line.to_string()));
        }
    }
    records.sort_by_key(|&(index, _)| index);
    for (expect, &(index, _)) in records.iter().enumerate() {
        if index != expect {
            return Err(CampaignError::Mismatch(format!(
                "merged inputs are missing cell {expect} (next present: {index}); \
                 a shard is missing or incomplete"
            )));
        }
    }
    let file = std::fs::File::create(out).map_err(|e| io_err(out, "create", &e))?;
    let mut writer = BufWriter::new(file);
    for (_, line) in &records {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| io_err(out, "write", &e))?;
    }
    writer.flush().map_err(|e| io_err(out, "flush", &e))?;
    Ok(MergeStats { inputs: inputs.len(), records: records.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory per test, under the system temp dir.
    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srs-campaign-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn result(index: usize) -> ScenarioResult {
        use crate::metrics::{NormalizedResult, SimResult};
        use srs_core::DefenseKind;
        use srs_trackers::TrackerKind;
        let workload = srs_workloads::all_workloads().remove(0);
        ScenarioResult {
            scenario: Scenario {
                index,
                defense: DefenseKind::ScaleSrs,
                t_rh: 1200,
                tracker: TrackerKind::MisraGries,
                cores: None,
                seed: None,
                attack: None,
                workload,
            },
            result: NormalizedResult {
                workload: "gups".to_string(),
                defense: "scale-srs".to_string(),
                t_rh: 1200,
                normalized_performance: 0.5,
                detail: SimResult {
                    workload: "gups".to_string(),
                    defense: "scale-srs".to_string(),
                    t_rh: 1200,
                    elapsed_ns: 10,
                    per_core_ipc: vec![1.0],
                    instructions: 100,
                    controller: srs_dram::ControllerStats::default(),
                    swaps: 1,
                    rows_pinned: 0,
                    pinned_hits: 0,
                    max_row_activations_in_window: 3,
                    security: None,
                    integrity: None,
                    telemetry: None,
                },
            },
        }
    }

    #[test]
    fn ranges_round_trip_and_compress() {
        let cells = vec![0, 1, 2, 3, 7, 9, 10];
        let encoded = encode_ranges(&cells);
        assert_eq!(encoded.to_compact(), "[[0, 3], [7, 7], [9, 10]]");
        assert_eq!(decode_ranges("cells", &encoded).unwrap(), cells);
        assert_eq!(encode_ranges(&[]).to_compact(), "[]");
        assert_eq!(decode_ranges("cells", &encode_ranges(&[])).unwrap(), Vec::<usize>::new());
        assert!(decode_ranges("cells", &Json::parse("[[3,1]]").unwrap()).is_err());
        assert!(decode_ranges("cells", &Json::parse("[[5,6],[1,2]]").unwrap()).is_err());
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = scratch("manifest");
        let path = dir.join("out.jsonl.manifest.json");
        let mut manifest = CampaignManifest::new("demo", 12, (0..12).collect());
        manifest.completed = vec![0, 1, 2, 5];
        manifest.failed =
            vec![CellFailure { index: 3, attempts: 3, error: "injected".to_string() }];
        manifest.bytes_committed = 1234;
        manifest.save(&path).unwrap();
        let loaded = CampaignManifest::load(&path).unwrap();
        assert_eq!(loaded, manifest);
        assert!(!dir.join("out.jsonl.manifest.json.tmp").exists(), "tmp file renamed away");
    }

    #[test]
    fn checkpoint_resume_truncates_the_torn_record_and_skips_completed_cells() {
        let dir = scratch("resume");
        let out = dir.join("out.jsonl");
        let cells: Vec<usize> = (0..4).collect();
        let mut sink = CheckpointSink::create(&out, "demo", 4, cells.clone()).unwrap();
        sink.on_result(&result(0));
        sink.on_result(&result(1));
        let manifest = sink.finish().unwrap();
        assert_eq!(manifest.completed, vec![0, 1]);

        // Simulate a crash mid-record: append half a line with no manifest
        // update.
        let committed = std::fs::read(&out).unwrap();
        let torn_line = result(2).to_json().to_compact();
        let mut torn = committed.clone();
        torn.extend_from_slice(&torn_line.as_bytes()[..torn_line.len() / 2]);
        std::fs::write(&out, &torn).unwrap();

        let (mut sink, state) = CheckpointSink::resume(&out, "demo", 4, &cells).unwrap();
        assert_eq!(state.completed, vec![0, 1]);
        assert_eq!(state.truncated_bytes, (torn_line.len() / 2) as u64);
        assert_eq!(std::fs::read(&out).unwrap(), committed, "torn bytes truncated");
        sink.on_result(&result(2));
        sink.on_result(&result(3));
        let manifest = sink.finish().unwrap();
        assert_eq!(manifest.completed, vec![0, 1, 2, 3]);

        // Resuming under a different campaign or cell set is refused.
        assert!(matches!(
            CheckpointSink::resume(&out, "other", 4, &cells),
            Err(CampaignError::Mismatch(_))
        ));
        assert!(matches!(
            CheckpointSink::resume(&out, "demo", 4, &[0, 1]),
            Err(CampaignError::Mismatch(_))
        ));
    }

    #[test]
    fn checkpoint_repairs_out_of_order_resume_appends() {
        let dir = scratch("sort");
        let out = dir.join("out.jsonl");
        let cells: Vec<usize> = (0..3).collect();
        // First run completes cells 0 and 2 (cell 1 failed).
        let mut sink = CheckpointSink::create(&out, "demo", 3, cells.clone()).unwrap();
        sink.on_result(&result(0));
        sink.on_result(&result(2));
        sink.on_cell_failed(&CellFailure { index: 1, attempts: 3, error: "injected".to_string() });
        sink.finish().unwrap();
        // Resume retries cell 1, which lands behind cell 2 in the file and
        // triggers the index-order repair at finish.
        let (mut sink, state) = CheckpointSink::resume(&out, "demo", 3, &cells).unwrap();
        assert_eq!(state.retried_failures.len(), 1);
        sink.on_result(&result(1));
        let manifest = sink.finish().unwrap();
        assert_eq!(manifest.completed, vec![0, 1, 2]);
        assert!(manifest.failed.is_empty());
        let text = std::fs::read_to_string(&out).unwrap();
        let indices: Vec<u64> = text
            .lines()
            .map(|l| {
                Json::parse(l).unwrap().get("scenario").unwrap().get("index").unwrap().as_u64()
            })
            .map(Option::unwrap)
            .collect();
        assert_eq!(indices, vec![0, 1, 2], "file repaired to index order");
    }

    #[test]
    fn merge_rejects_gaps_and_duplicates_and_orders_by_index() {
        let dir = scratch("merge");
        let shard_a = dir.join("a.jsonl");
        let shard_b = dir.join("b.jsonl");
        let write = |path: &Path, indices: &[usize]| {
            let mut text = String::new();
            for &i in indices {
                text.push_str(&result(i).to_json().to_compact());
                text.push('\n');
            }
            std::fs::write(path, text).unwrap();
        };
        write(&shard_a, &[0, 2]);
        write(&shard_b, &[1, 3]);
        let out = dir.join("merged.jsonl");
        let stats = merge_results(&[shard_a.clone(), shard_b.clone()], &out).unwrap();
        assert_eq!(stats, MergeStats { inputs: 2, records: 4 });
        let text = std::fs::read_to_string(&out).unwrap();
        let mut expect = String::new();
        for i in 0..4 {
            expect.push_str(&result(i).to_json().to_compact());
            expect.push('\n');
        }
        assert_eq!(text, expect, "merge is submission-ordered and byte-verbatim");

        // A gap (missing cell 1) is a mismatch, not a silent hole.
        write(&shard_b, &[3]);
        assert!(matches!(
            merge_results(&[shard_a.clone(), shard_b.clone()], &out),
            Err(CampaignError::Mismatch(_))
        ));
        // Overlapping shards are a mismatch naming both files.
        write(&shard_b, &[0, 1, 3]);
        let err = merge_results(&[shard_a, shard_b], &out).unwrap_err();
        assert!(matches!(err, CampaignError::Mismatch(_)));
        assert!(err.to_string().contains("cell 0"));
    }

    #[test]
    fn shard_planner_is_deterministic_and_keeps_units_whole() {
        let spec = ExperimentSpec::parse(
            r#"{
                "name": "shard_demo",
                "patch": {"cores": 1, "target_instructions": 2000,
                          "trace_records_per_core": 1000, "max_sim_ns": 2000000},
                "defenses": ["baseline", "srs", "scale-srs"],
                "workloads": ["gups", "gcc"]
            }"#,
        )
        .unwrap();
        let shards = plan_shards(&spec, 2).unwrap();
        assert_eq!(shards, plan_shards(&spec, 2).unwrap(), "planning is deterministic");
        let experiment = spec.to_experiment().unwrap();
        let units = execution_units(&experiment);
        // Every unit lands wholly inside one shard.
        for unit in &units {
            let homes: Vec<usize> = shards
                .iter()
                .enumerate()
                .filter(|(_, s)| unit.iter().any(|c| s.cells.contains(c)))
                .map(|(k, _)| k)
                .collect();
            assert_eq!(homes.len(), 1, "unit {unit:?} spans shards {homes:?}");
            let home = &shards[homes[0]];
            assert!(unit.iter().all(|c| home.cells.contains(c)));
        }
        // Shards partition the grid.
        let mut all: Vec<usize> = shards.iter().flat_map(|s| s.cells.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..experiment.job_count()).collect::<Vec<_>>());
        // Round-trip through the on-disk form.
        let text = shards[0].to_json().to_pretty();
        let parsed = ShardManifest::parse("shard0", &text).unwrap();
        assert_eq!(parsed, shards[0]);
        assert!(ShardManifest::is_shard_json(&Json::parse(&text).unwrap()));
        assert!(!ShardManifest::is_shard_json(&Json::parse("{\"name\": \"x\"}").unwrap()));
        // More shards than units clamps instead of emitting empty shards.
        let many = plan_shards(&spec, 64).unwrap();
        assert_eq!(many.len(), units.len());
        assert!(many.iter().all(|s| !s.cells.is_empty()));
    }
}
