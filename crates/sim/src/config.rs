//! Experiment and system configuration for the full-system simulator.

use serde::{Deserialize, Serialize};
use srs_attack::AttackSpec;
use srs_core::{DefenseKind, MitigationConfig};
use srs_cpu::CoreConfig;
use srs_dram::{DramConfig, DramTiming};
use srs_trackers::TrackerKind;

use crate::faults::FaultsConfig;
use crate::json::{obj, Json, ToJson};
use crate::spec::{
    attack_spec_from_json, f64_field, page_policy_name, parse_defense, parse_page_policy,
    parse_tracker, require, str_field, u32_field, u64_field, usize_field, SpecError,
};
use crate::telemetry::TelemetryConfig;

/// Configuration of one simulation run.
///
/// The defaults reproduce Table III, but `scale_for_speed` provides the
/// scaled-down variant the benchmark harness uses so that a full sweep over
/// 78 workloads and several defenses finishes in minutes instead of the
/// paper's 15 CPU-hours: fewer instructions per core and a shorter refresh
/// window (so that window-boundary behaviour such as lazy place-back is
/// still exercised).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// DRAM geometry and timing.
    pub dram: DramConfig,
    /// Core model configuration (shared by all cores).
    pub core: CoreConfig,
    /// Number of cores (Table III uses 8).
    pub cores: usize,
    /// Row Hammer threshold to defend against.
    pub t_rh: u64,
    /// The defense to instantiate.
    pub defense: DefenseKind,
    /// Swap rate override; `None` uses the defense's default (6 for RRS/SRS,
    /// 3 for Scale-SRS).
    pub swap_rate: Option<u64>,
    /// The aggressor tracker to use.
    pub tracker: TrackerKind,
    /// Number of trace records generated per core.
    pub trace_records_per_core: usize,
    /// Seed for workload generation and defense randomness.
    pub seed: u64,
    /// Hard cap on simulated time, in nanoseconds.
    pub max_sim_ns: u64,
    /// Latency of an access served from the LLC (pinned rows), in ns.
    pub llc_hit_latency_ns: u64,
    /// Adversarial scenario: when set, the system adds the specified
    /// closed-loop attacker cores next to the victim trace cores and
    /// collects security metrics ([`crate::security::SecurityReport`]).
    pub attack: Option<AttackSpec>,
    /// Simulated-time telemetry configuration. Disarmed by default; arming
    /// it never changes simulation results (the report rides on
    /// [`crate::metrics::SimResult`] outside its JSON encoding — see
    /// [`crate::telemetry`]).
    pub telemetry: TelemetryConfig,
    /// Fault-injection configuration: DRAM bit flips from over-threshold
    /// disturbance, decoded under an ECC model. Disabled by default, and
    /// only active on runs that carry an attack scenario — see
    /// [`crate::faults`].
    pub faults: FaultsConfig,
}

impl SystemConfig {
    /// The paper's full-size configuration for a given defense and `TRH`.
    #[must_use]
    pub fn paper_default(defense: DefenseKind, t_rh: u64) -> Self {
        Self {
            dram: DramConfig::default(),
            core: CoreConfig::default(),
            cores: 8,
            t_rh,
            defense,
            swap_rate: None,
            tracker: TrackerKind::MisraGries,
            trace_records_per_core: 2_000_000,
            seed: 0xC0DE,
            max_sim_ns: 500_000_000,
            llc_hit_latency_ns: 20,
            attack: None,
            telemetry: TelemetryConfig::default(),
            faults: FaultsConfig::default(),
        }
    }

    /// A scaled-down configuration suitable for tests and for the default
    /// (quick) benchmark mode: 4 cores, a 2 ms refresh window and a few tens
    /// of thousands of memory operations per core.
    #[must_use]
    pub fn scaled_for_speed(defense: DefenseKind, t_rh: u64) -> Self {
        let mut config = Self::paper_default(defense, t_rh);
        config.cores = 4;
        config.core.target_instructions = 120_000;
        config.trace_records_per_core = 30_000;
        config.dram.refresh_window_ns = 2_000_000;
        config.max_sim_ns = 40_000_000;
        config
    }

    /// The effective swap rate of this configuration.
    #[must_use]
    pub fn effective_swap_rate(&self) -> u64 {
        self.swap_rate.unwrap_or_else(|| self.defense.default_swap_rate()).max(1)
    }

    /// The mitigation configuration implied by this system configuration.
    #[must_use]
    pub fn mitigation_config(&self) -> MitigationConfig {
        let mut m = MitigationConfig::for_system(&self.dram, self.t_rh, self.effective_swap_rate());
        m.rng_seed = self.seed ^ 0x517e;
        m.refresh_window_ns = self.dram.refresh_window_ns;
        m
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("dram", dram_to_json(&self.dram)),
            ("core", core_to_json(&self.core)),
            ("cores", self.cores.into()),
            ("t_rh", self.t_rh.into()),
            ("defense", Json::from(self.defense.to_string())),
            ("swap_rate", self.swap_rate.into()),
            ("tracker", Json::from(self.tracker.to_string())),
            ("trace_records_per_core", self.trace_records_per_core.into()),
            ("seed", self.seed.into()),
            ("max_sim_ns", self.max_sim_ns.into()),
            ("llc_hit_latency_ns", self.llc_hit_latency_ns.into()),
            ("attack", self.attack.as_ref().map_or(Json::Null, ToJson::to_json)),
            ("telemetry", self.telemetry.to_json()),
            ("faults", self.faults.to_json()),
        ])
    }
}

impl SystemConfig {
    /// Decode a full configuration from the object form [`ToJson`] emits.
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let attack = match json.get("attack") {
            None | Some(Json::Null) => None,
            Some(value) => Some(attack_spec_from_json(value)?),
        };
        let swap_rate = match json.get("swap_rate") {
            None | Some(Json::Null) => None,
            Some(value) => Some(u64_field("swap_rate", value)?),
        };
        // Tolerant like `attack`: configurations encoded before telemetry
        // existed decode to the disarmed default.
        let telemetry = match json.get("telemetry") {
            None | Some(Json::Null) => TelemetryConfig::default(),
            Some(value) => TelemetryConfig::from_json(value)
                .map_err(|message| SpecError::Field { field: "telemetry".to_string(), message })?,
        };
        // Tolerant like `telemetry`: configurations encoded before the
        // fault model existed decode to the disabled default.
        let faults = match json.get("faults") {
            None | Some(Json::Null) => FaultsConfig::default(),
            Some(value) => FaultsConfig::from_json(value)
                .map_err(|message| SpecError::Field { field: "faults".to_string(), message })?,
        };
        Ok(Self {
            dram: dram_from_json(require(json, "dram")?)?,
            core: core_from_json(require(json, "core")?)?,
            cores: usize_field("cores", require(json, "cores")?)?,
            t_rh: u64_field("t_rh", require(json, "t_rh")?)?,
            defense: parse_defense(str_field("defense", require(json, "defense")?)?)?,
            swap_rate,
            tracker: parse_tracker(str_field("tracker", require(json, "tracker")?)?)?,
            trace_records_per_core: usize_field(
                "trace_records_per_core",
                require(json, "trace_records_per_core")?,
            )?,
            seed: u64_field("seed", require(json, "seed")?)?,
            max_sim_ns: u64_field("max_sim_ns", require(json, "max_sim_ns")?)?,
            llc_hit_latency_ns: u64_field(
                "llc_hit_latency_ns",
                require(json, "llc_hit_latency_ns")?,
            )?,
            attack,
            telemetry,
            faults,
        })
    }
}

fn dram_to_json(dram: &DramConfig) -> Json {
    let t = &dram.timing;
    let timing = obj(vec![
        ("t_rcd", t.t_rcd.into()),
        ("t_rp", t.t_rp.into()),
        ("t_cas", t.t_cas.into()),
        ("t_rc", t.t_rc.into()),
        ("t_rfc", t.t_rfc.into()),
        ("t_refi", t.t_refi.into()),
        ("t_burst", t.t_burst.into()),
        ("t_wr", t.t_wr.into()),
    ]);
    obj(vec![
        ("channels", dram.channels.into()),
        ("ranks_per_channel", dram.ranks_per_channel.into()),
        ("banks_per_rank", dram.banks_per_rank.into()),
        ("rows_per_bank", dram.rows_per_bank.into()),
        ("row_size_bytes", dram.row_size_bytes.into()),
        ("line_size_bytes", dram.line_size_bytes.into()),
        ("timing", timing),
        ("page_policy", Json::from(page_policy_name(dram.page_policy))),
        ("refresh_window_ns", dram.refresh_window_ns.into()),
        ("queue_capacity", dram.queue_capacity.into()),
    ])
}

fn dram_from_json(json: &Json) -> Result<DramConfig, SpecError> {
    let timing_json = require(json, "timing")?;
    let t = |name: &str| -> Result<u64, SpecError> {
        u64_field(&format!("timing.{name}"), require(timing_json, name)?)
    };
    let timing = DramTiming {
        t_rcd: t("t_rcd")?,
        t_rp: t("t_rp")?,
        t_cas: t("t_cas")?,
        t_rc: t("t_rc")?,
        t_rfc: t("t_rfc")?,
        t_refi: t("t_refi")?,
        t_burst: t("t_burst")?,
        t_wr: t("t_wr")?,
    };
    Ok(DramConfig {
        channels: usize_field("channels", require(json, "channels")?)?,
        ranks_per_channel: usize_field("ranks_per_channel", require(json, "ranks_per_channel")?)?,
        banks_per_rank: usize_field("banks_per_rank", require(json, "banks_per_rank")?)?,
        rows_per_bank: u64_field("rows_per_bank", require(json, "rows_per_bank")?)?,
        row_size_bytes: u64_field("row_size_bytes", require(json, "row_size_bytes")?)?,
        line_size_bytes: u64_field("line_size_bytes", require(json, "line_size_bytes")?)?,
        timing,
        page_policy: parse_page_policy(str_field("page_policy", require(json, "page_policy")?)?)?,
        refresh_window_ns: u64_field("refresh_window_ns", require(json, "refresh_window_ns")?)?,
        queue_capacity: usize_field("queue_capacity", require(json, "queue_capacity")?)?,
    })
}

fn core_to_json(core: &CoreConfig) -> Json {
    obj(vec![
        ("clock_ghz", core.clock_ghz.into()),
        ("rob_size", u64::from(core.rob_size).into()),
        ("fetch_width", u64::from(core.fetch_width).into()),
        ("retire_width", u64::from(core.retire_width).into()),
        ("max_outstanding_misses", core.max_outstanding_misses.into()),
        ("target_instructions", core.target_instructions.into()),
    ])
}

fn core_from_json(json: &Json) -> Result<CoreConfig, SpecError> {
    Ok(CoreConfig {
        clock_ghz: f64_field("clock_ghz", require(json, "clock_ghz")?)?,
        rob_size: u32_field("rob_size", require(json, "rob_size")?)?,
        fetch_width: u32_field("fetch_width", require(json, "fetch_width")?)?,
        retire_width: u32_field("retire_width", require(json, "retire_width")?)?,
        max_outstanding_misses: usize_field(
            "max_outstanding_misses",
            require(json, "max_outstanding_misses")?,
        )?,
        target_instructions: u64_field(
            "target_instructions",
            require(json, "target_instructions")?,
        )?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_iii() {
        let c = SystemConfig::paper_default(DefenseKind::ScaleSrs, 1200);
        assert_eq!(c.cores, 8);
        assert_eq!(c.dram.banks_per_rank, 16);
        assert_eq!(c.effective_swap_rate(), 3);
        assert_eq!(c.mitigation_config().swap_threshold(), 400);
    }

    #[test]
    fn swap_rate_override_wins() {
        let mut c = SystemConfig::paper_default(DefenseKind::Rrs { immediate_unswap: true }, 4800);
        assert_eq!(c.effective_swap_rate(), 6);
        c.swap_rate = Some(8);
        assert_eq!(c.effective_swap_rate(), 8);
    }

    #[test]
    fn system_config_round_trips_through_json() {
        use srs_attack::engine::shipped_patterns;
        let mut config =
            SystemConfig::paper_default(DefenseKind::Rrs { immediate_unswap: false }, 2400);
        config.swap_rate = Some(8);
        config.tracker = TrackerKind::Hydra;
        config.attack = shipped_patterns().into_iter().find(|a| a.name == "juggernaut");
        let decoded = SystemConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(decoded, config);
        // Text round trip too: encode → parse → decode.
        let text = config.to_json().to_pretty();
        let decoded = SystemConfig::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, config);
    }

    #[test]
    fn oversized_core_widths_are_rejected_not_truncated() {
        let config = SystemConfig::paper_default(DefenseKind::Srs, 1200);
        // u32::MAX + 193: a silent `as u32` truncation would read back 192.
        let text =
            config.to_json().to_pretty().replace("\"rob_size\": 192", "\"rob_size\": 4294967488");
        let json = crate::json::Json::parse(&text).unwrap();
        let err = SystemConfig::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("rob_size"), "{err}");
    }

    #[test]
    fn scaled_config_is_smaller() {
        let full = SystemConfig::paper_default(DefenseKind::Srs, 2400);
        let quick = SystemConfig::scaled_for_speed(DefenseKind::Srs, 2400);
        assert!(quick.core.target_instructions < full.core.target_instructions);
        assert!(quick.dram.refresh_window_ns < full.dram.refresh_window_ns);
    }
}
