//! Experiment and system configuration for the full-system simulator.

use serde::{Deserialize, Serialize};
use srs_attack::AttackSpec;
use srs_core::{DefenseKind, MitigationConfig};
use srs_cpu::CoreConfig;
use srs_dram::DramConfig;
use srs_trackers::TrackerKind;

/// Configuration of one simulation run.
///
/// The defaults reproduce Table III, but `scale_for_speed` provides the
/// scaled-down variant the benchmark harness uses so that a full sweep over
/// 78 workloads and several defenses finishes in minutes instead of the
/// paper's 15 CPU-hours: fewer instructions per core and a shorter refresh
/// window (so that window-boundary behaviour such as lazy place-back is
/// still exercised).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// DRAM geometry and timing.
    pub dram: DramConfig,
    /// Core model configuration (shared by all cores).
    pub core: CoreConfig,
    /// Number of cores (Table III uses 8).
    pub cores: usize,
    /// Row Hammer threshold to defend against.
    pub t_rh: u64,
    /// The defense to instantiate.
    pub defense: DefenseKind,
    /// Swap rate override; `None` uses the defense's default (6 for RRS/SRS,
    /// 3 for Scale-SRS).
    pub swap_rate: Option<u64>,
    /// The aggressor tracker to use.
    pub tracker: TrackerKind,
    /// Number of trace records generated per core.
    pub trace_records_per_core: usize,
    /// Seed for workload generation and defense randomness.
    pub seed: u64,
    /// Hard cap on simulated time, in nanoseconds.
    pub max_sim_ns: u64,
    /// Latency of an access served from the LLC (pinned rows), in ns.
    pub llc_hit_latency_ns: u64,
    /// Adversarial scenario: when set, the system adds the specified
    /// closed-loop attacker cores next to the victim trace cores and
    /// collects security metrics ([`crate::security::SecurityReport`]).
    pub attack: Option<AttackSpec>,
}

impl SystemConfig {
    /// The paper's full-size configuration for a given defense and `TRH`.
    #[must_use]
    pub fn paper_default(defense: DefenseKind, t_rh: u64) -> Self {
        Self {
            dram: DramConfig::default(),
            core: CoreConfig::default(),
            cores: 8,
            t_rh,
            defense,
            swap_rate: None,
            tracker: TrackerKind::MisraGries,
            trace_records_per_core: 2_000_000,
            seed: 0xC0DE,
            max_sim_ns: 500_000_000,
            llc_hit_latency_ns: 20,
            attack: None,
        }
    }

    /// A scaled-down configuration suitable for tests and for the default
    /// (quick) benchmark mode: 4 cores, a 2 ms refresh window and a few tens
    /// of thousands of memory operations per core.
    #[must_use]
    pub fn scaled_for_speed(defense: DefenseKind, t_rh: u64) -> Self {
        let mut config = Self::paper_default(defense, t_rh);
        config.cores = 4;
        config.core.target_instructions = 120_000;
        config.trace_records_per_core = 30_000;
        config.dram.refresh_window_ns = 2_000_000;
        config.max_sim_ns = 40_000_000;
        config
    }

    /// The effective swap rate of this configuration.
    #[must_use]
    pub fn effective_swap_rate(&self) -> u64 {
        self.swap_rate.unwrap_or_else(|| self.defense.default_swap_rate()).max(1)
    }

    /// The mitigation configuration implied by this system configuration.
    #[must_use]
    pub fn mitigation_config(&self) -> MitigationConfig {
        let mut m = MitigationConfig::for_system(&self.dram, self.t_rh, self.effective_swap_rate());
        m.rng_seed = self.seed ^ 0x517e;
        m.refresh_window_ns = self.dram.refresh_window_ns;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_iii() {
        let c = SystemConfig::paper_default(DefenseKind::ScaleSrs, 1200);
        assert_eq!(c.cores, 8);
        assert_eq!(c.dram.banks_per_rank, 16);
        assert_eq!(c.effective_swap_rate(), 3);
        assert_eq!(c.mitigation_config().swap_threshold(), 400);
    }

    #[test]
    fn swap_rate_override_wins() {
        let mut c = SystemConfig::paper_default(DefenseKind::Rrs { immediate_unswap: true }, 4800);
        assert_eq!(c.effective_swap_rate(), 6);
        c.swap_rate = Some(8);
        assert_eq!(c.effective_swap_rate(), 8);
    }

    #[test]
    fn scaled_config_is_smaller() {
        let full = SystemConfig::paper_default(DefenseKind::Srs, 2400);
        let quick = SystemConfig::scaled_for_speed(DefenseKind::Srs, 2400);
        assert!(quick.core.target_instructions < full.core.target_instructions);
        assert!(quick.dram.refresh_window_ns < full.dram.refresh_window_ns);
    }
}
