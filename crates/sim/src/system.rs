//! The full-system simulator: cores, tracker, defense and DRAM wired
//! together (the USIMM-equivalent harness).
//!
//! The simulated traces are memory-side traces (already filtered through the
//! L1/L2 hierarchy, as in the paper's artifact), so demand records go
//! straight to the memory controller. The shared LLC appears in the model
//! only where the defenses need it: rows pinned by Scale-SRS are served at
//! LLC latency and stop producing DRAM activations.

use std::collections::{HashMap, HashSet, VecDeque};

use srs_core::{build_defense, MitigationAction, RowOpKind, RowSwapDefense};
use srs_cpu::{AccessToken, CoreStatus, TraceCore};
use srs_dram::{
    AccessKind, AccessSink, ActivationEvent, ActivationSink, BankId, CompletedAccess, DramAddress,
    DramTiming, MaintenanceKind, MaintenanceOp, MemRequest, MemoryController, PhysAddr, RequestId,
};
use srs_trackers::{
    AggressorTracker, HydraConfig, HydraTracker, MisraGriesConfig, MisraGriesTracker, TrackerKind,
};
use srs_workloads::Trace;

use crate::config::SystemConfig;
use crate::metrics::SimResult;

/// A memory operation waiting for queue space in the controller.
#[derive(Debug, Clone, Copy)]
struct DeferredAccess {
    addr: PhysAddr,
    is_write: bool,
    origin: Option<(usize, AccessToken)>,
}

/// The full-system simulator for one workload under one configuration.
pub struct System {
    config: SystemConfig,
    workload: String,
    cores: Vec<TraceCore>,
    core_finish_ns: Vec<Option<u64>>,
    controller: MemoryController,
    tracker: Box<dyn AggressorTracker + Send>,
    defense: Box<dyn RowSwapDefense + Send>,
    pinned_rows: HashSet<(usize, u64)>,
    pending: HashMap<RequestId, (usize, AccessToken)>,
    deferred: VecDeque<DeferredAccess>,
    next_window_ns: u64,
    /// Per-bank shards of per-logical-row activation counts for the current
    /// refresh window. Sharding by bank keeps each map small and lets the
    /// window rollover reset state bank by bank without a global rebuild.
    bank_activations: Vec<HashMap<u64, u64>>,
    max_row_activations: u64,
    rows_pinned: u64,
    pinned_hits: u64,
}

/// The streaming observer wired into the controller for one tick: it feeds
/// the aggressor tracker from the activation stream, completes core reads
/// from the completion stream, and queues the mitigation work the tick
/// produced (applied by the caller once the controller borrow ends).
struct TickObserver<'a> {
    tracker: &'a mut (dyn AggressorTracker + Send),
    defense: &'a mut (dyn RowSwapDefense + Send),
    cores: &'a mut [TraceCore],
    pending: &'a mut HashMap<RequestId, (usize, AccessToken)>,
    bank_activations: &'a mut [HashMap<u64, u64>],
    max_row_activations: &'a mut u64,
    timing: DramTiming,
    now: u64,
    actions: Vec<MitigationAction>,
    counter_ops: Vec<MaintenanceOp>,
}

impl ActivationSink for TickObserver<'_> {
    fn on_activation(&mut self, event: &ActivationEvent) {
        if event.maintenance {
            // Mitigation-issued activations are charged by the attack models
            // and statistics, not by the aggressor tracker (matching the
            // hardware, where the mitigation's own row movements do not feed
            // back into its tracker).
            return;
        }
        let bank = event.bank.index();
        let logical_row = event.logical_row;
        let count = self.bank_activations[bank].entry(logical_row).or_insert(0);
        *count += 1;
        *self.max_row_activations = (*self.max_row_activations).max(*count);

        let decision = self.tracker.record_activation(bank, logical_row);
        if decision.extra_memory_accesses > 0 {
            // Hydra's memory-resident counter table traffic.
            self.counter_ops.push(MaintenanceOp::new(
                event.bank,
                decision.extra_memory_accesses * (self.timing.t_rc + self.timing.t_cas),
                Vec::new(),
                MaintenanceKind::CounterAccess,
            ));
        }
        if decision.mitigate {
            self.actions.extend(self.defense.on_mitigation_trigger(bank, logical_row, self.now));
        }
    }
}

impl AccessSink for TickObserver<'_> {
    fn on_access(&mut self, done: &CompletedAccess) {
        if let Some((core, token)) = self.pending.remove(&done.request_id) {
            self.cores[core].complete_read(token, done.finish_ns.max(self.now));
        }
    }
}

fn build_tracker(config: &SystemConfig) -> Box<dyn AggressorTracker + Send> {
    let mitigation = config.mitigation_config();
    let ts = mitigation.swap_threshold();
    match config.tracker {
        TrackerKind::MisraGries => Box::new(MisraGriesTracker::new(
            MisraGriesConfig::for_threshold(ts, mitigation.act_max_per_window, mitigation.banks),
        )),
        TrackerKind::Hydra => Box::new(HydraTracker::new(HydraConfig::for_threshold(
            ts,
            mitigation.banks,
            mitigation.rows_per_bank,
        ))),
    }
}

fn maintenance_kind(kind: RowOpKind) -> MaintenanceKind {
    match kind {
        RowOpKind::Swap => MaintenanceKind::Swap,
        RowOpKind::UnswapSwap => MaintenanceKind::UnswapSwap,
        RowOpKind::PlaceBack | RowOpKind::BulkUnswap => MaintenanceKind::PlaceBack,
        RowOpKind::CounterAccess => MaintenanceKind::CounterAccess,
    }
}

impl System {
    /// Build a system that runs `trace` on every core (rate mode, as in the
    /// paper's methodology).
    #[must_use]
    pub fn new(config: SystemConfig, trace: Trace) -> Self {
        let controller = MemoryController::new(config.dram.clone());
        let tracker = build_tracker(&config);
        let defense = build_defense(config.defense, config.mitigation_config());
        let cores: Vec<TraceCore> = (0..config.cores)
            .map(|i| {
                let mut t = trace.clone();
                // Give each core a private copy offset into the address space
                // so rate mode does not trivially share every row.
                let offset = (i as u64) << 33;
                for r in &mut t.records {
                    r.addr = r.addr.wrapping_add(offset);
                }
                TraceCore::new(config.core, t)
            })
            .collect();
        let window = config.dram.refresh_window_ns;
        let total_banks = config.dram.total_banks();
        Self {
            workload: trace.name.clone(),
            core_finish_ns: vec![None; config.cores],
            cores,
            controller,
            tracker,
            defense,
            pinned_rows: HashSet::new(),
            pending: HashMap::new(),
            deferred: VecDeque::new(),
            next_window_ns: window,
            bank_activations: vec![HashMap::new(); total_banks],
            max_row_activations: 0,
            rows_pinned: 0,
            pinned_hits: 0,
            config,
        }
    }

    /// The configuration of this system.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn decode(&self, addr: PhysAddr) -> (BankId, DramAddress) {
        let d = self.controller.mapper().decode(addr);
        (d.bank_id(&self.config.dram), d)
    }

    fn remapped_address(&self, decoded: &DramAddress, bank: BankId) -> PhysAddr {
        let physical_row = self.defense.translate(bank.index(), decoded.row);
        if physical_row == decoded.row {
            return self.controller.mapper().encode(decoded).unwrap_or(PhysAddr::new(0));
        }
        let remapped =
            DramAddress { row: physical_row % self.config.dram.rows_per_bank, ..*decoded };
        self.controller.mapper().encode(&remapped).unwrap_or_else(|_| {
            self.controller.mapper().encode(decoded).unwrap_or(PhysAddr::new(0))
        })
    }

    fn apply_actions(&mut self, actions: Vec<MitigationAction>) {
        for action in actions {
            match action {
                MitigationAction::RowOperation { bank, kind, duration_ns, activations } => {
                    let op = MaintenanceOp::new(
                        BankId::new(bank),
                        duration_ns,
                        activations,
                        maintenance_kind(kind),
                    );
                    let _ = self.controller.enqueue_maintenance(op);
                }
                MitigationAction::PinRow { bank, row } => {
                    if self.pinned_rows.insert((bank, row)) {
                        self.rows_pinned += 1;
                    }
                }
            }
        }
    }

    fn submit(
        &mut self,
        addr: PhysAddr,
        is_write: bool,
        origin: Option<(usize, AccessToken)>,
        now: u64,
    ) {
        let (bank, decoded) = self.decode(addr);
        let logical_row = decoded.row;

        if self.pinned_rows.contains(&(bank.index(), logical_row)) {
            // The row lives in the LLC for the rest of the window.
            self.pinned_hits += 1;
            if let Some((core, token)) = origin {
                self.cores[core].complete_read(token, now + self.config.llc_hit_latency_ns);
            }
            return;
        }

        // Row Hammer accounting happens in-stream when the controller issues
        // the ACT (see `TickObserver::on_activation`); the request only
        // carries the logical row so the activation event can report it.
        let target = self.remapped_address(&decoded, bank);
        let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
        let core_id = origin.map_or(0, |(core, _)| core);
        let request = MemRequest::new(target, kind, core_id, now).with_logical_row(logical_row);
        match self.controller.enqueue(request) {
            Ok(id) => {
                if let Some(origin) = origin {
                    self.pending.insert(id, origin);
                }
            }
            Err(_) => self.deferred.push_back(DeferredAccess { addr, is_write, origin }),
        }
    }

    fn retry_deferred(&mut self, now: u64) {
        for _ in 0..self.deferred.len() {
            let Some(item) = self.deferred.pop_front() else { break };
            if self.controller.can_accept(item.addr) {
                self.submit(item.addr, item.is_write, item.origin, now);
            } else {
                self.deferred.push_back(item);
            }
        }
    }

    fn handle_window_rollover(&mut self, now: u64) {
        while now >= self.next_window_ns {
            let boundary = self.next_window_ns;
            self.tracker.reset_epoch();
            let actions = self.defense.on_new_window(boundary);
            self.apply_actions(actions);
            self.pinned_rows.clear();
            for shard in &mut self.bank_activations {
                shard.clear();
            }
            self.next_window_ns += self.config.dram.refresh_window_ns;
        }
    }

    fn all_cores_finished(&self) -> bool {
        self.cores.iter().all(TraceCore::is_finished)
    }

    /// Run the simulation to completion (all cores reach their instruction
    /// target, or the simulated-time cap is hit) and return the results.
    pub fn run(mut self) -> SimResult {
        let step_ns: u64 = 25;
        let mut now: u64 = 0;
        loop {
            if now >= self.config.max_sim_ns {
                break;
            }
            if self.all_cores_finished()
                && self.pending.is_empty()
                && self.deferred.is_empty()
                && self.controller.is_idle()
            {
                break;
            }
            self.handle_window_rollover(now);
            self.retry_deferred(now);

            // Let every core issue work available at this time.
            for core_idx in 0..self.cores.len() {
                if self.deferred.len() > 512 {
                    break;
                }
                for _ in 0..8 {
                    match self.cores[core_idx].status(now) {
                        CoreStatus::ReadyAt(t) if t <= now => {}
                        CoreStatus::Finished => {
                            if self.core_finish_ns[core_idx].is_none() {
                                self.core_finish_ns[core_idx] = Some(now);
                            }
                            break;
                        }
                        _ => break,
                    }
                    let Some(issue) = self.cores[core_idx].try_issue(now) else { break };
                    let origin = if issue.is_write { None } else { Some((core_idx, issue.token)) };
                    self.submit(PhysAddr::new(issue.addr), issue.is_write, origin, now);
                }
            }

            // Advance the memory controller; activations stream into the
            // tracker/defense and completions into the cores as they happen.
            let mut observer = TickObserver {
                tracker: self.tracker.as_mut(),
                defense: self.defense.as_mut(),
                cores: &mut self.cores,
                pending: &mut self.pending,
                bank_activations: &mut self.bank_activations,
                max_row_activations: &mut self.max_row_activations,
                timing: self.config.dram.timing,
                now,
                actions: Vec::new(),
                counter_ops: Vec::new(),
            };
            self.controller.tick_into(now, &mut observer);
            let TickObserver { actions, counter_ops, .. } = observer;
            for op in counter_ops {
                let _ = self.controller.enqueue_maintenance(op);
            }
            self.apply_actions(actions);

            // Lazy defense work (SRS place-back).
            let actions = self.defense.on_tick(now);
            self.apply_actions(actions);

            now += step_ns;
        }

        let elapsed = now.max(1);
        for slot in &mut self.core_finish_ns {
            if slot.is_none() {
                *slot = Some(elapsed);
            }
        }
        let per_core_ipc: Vec<f64> = self
            .cores
            .iter()
            .zip(&self.core_finish_ns)
            .map(|(core, finish)| core.ipc(finish.unwrap_or(elapsed).max(1)))
            .collect();
        let instructions = self.cores.iter().map(TraceCore::retired_instructions).sum();
        SimResult {
            workload: self.workload,
            defense: self.defense.name().to_string(),
            t_rh: self.config.t_rh,
            elapsed_ns: elapsed,
            per_core_ipc,
            instructions,
            controller: self.controller.stats().clone(),
            swaps: self.defense.swaps_performed(),
            rows_pinned: self.rows_pinned,
            pinned_hits: self.pinned_hits,
            max_row_activations_in_window: self.max_row_activations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_core::DefenseKind;
    use srs_workloads::{hammer_trace, WorkloadSpec};

    fn tiny_config(defense: DefenseKind, t_rh: u64) -> SystemConfig {
        let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
        config.cores = 2;
        config.core.target_instructions = 6_000;
        config.trace_records_per_core = 2_000;
        config.dram.refresh_window_ns = 500_000;
        config.max_sim_ns = 4_000_000;
        config
    }

    fn tiny_trace(records: usize) -> Trace {
        WorkloadSpec {
            name: "test-hot".to_string(),
            footprint_bytes: 1 << 24,
            base_addr: 0,
            read_fraction: 0.7,
            mean_gap: 2,
            pattern: srs_workloads::AccessPattern::HotRows { hot_rows: 2, hot_fraction: 0.6 },
        }
        .generate(records, 11)
    }

    #[test]
    fn baseline_run_completes_and_reports_ipc() {
        let config = tiny_config(DefenseKind::Baseline, 1200);
        let result = System::new(config, tiny_trace(2_000)).run();
        assert!(result.instructions > 0);
        assert!(result.total_ipc() > 0.0);
        assert!(result.controller.reads > 0);
        assert_eq!(result.swaps, 0);
    }

    #[test]
    fn hammering_triggers_swaps_under_rrs() {
        let config = tiny_config(DefenseKind::Rrs { immediate_unswap: true }, 1200);
        let trace = hammer_trace("hammer", 0x10000, 2_000, 1 << 26, 5);
        let result = System::new(config, trace).run();
        assert!(result.swaps > 0, "hammering must trigger swaps");
        assert!(result.controller.maintenance_activations > 0);
    }

    #[test]
    fn defense_slows_down_hot_workloads_relative_to_baseline() {
        let trace = tiny_trace(3_000);
        let baseline = System::new(tiny_config(DefenseKind::Baseline, 1200), trace.clone()).run();
        let rrs =
            System::new(tiny_config(DefenseKind::Rrs { immediate_unswap: true }, 1200), trace)
                .run();
        assert!(rrs.swaps > 0);
        assert!(
            rrs.total_ipc() <= baseline.total_ipc() * 1.02,
            "rrs {} vs baseline {}",
            rrs.total_ipc(),
            baseline.total_ipc()
        );
    }

    #[test]
    fn scale_srs_pins_outliers_under_targeted_hammering() {
        let mut config = tiny_config(DefenseKind::ScaleSrs, 2400);
        config.dram.refresh_window_ns = 2_000_000;
        let trace = hammer_trace("hammer", 0x4000, 6_000, 1 << 26, 9);
        let result = System::new(config, trace).run();
        assert!(result.swaps > 0);
        assert!(result.rows_pinned > 0, "targeted hammering must pin the outlier row");
        assert!(result.pinned_hits > 0, "pinned rows must absorb accesses");
    }

    #[test]
    fn max_row_activation_statistic_sees_the_hot_row() {
        let config = tiny_config(DefenseKind::Baseline, 1200);
        let trace = hammer_trace("hammer", 0x8000, 1_500, 1 << 26, 3);
        let result = System::new(config, trace).run();
        assert!(result.max_row_activations_in_window > 100);
    }
}
