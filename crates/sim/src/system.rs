//! The full-system simulator: cores, tracker, defense and DRAM wired
//! together (the USIMM-equivalent harness).
//!
//! The simulated traces are memory-side traces (already filtered through the
//! L1/L2 hierarchy, as in the paper's artifact), so demand records go
//! straight to the memory controller. The shared LLC appears in the model
//! only where the defenses need it: rows pinned by Scale-SRS are served at
//! LLC latency and stop producing DRAM activations.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use fxhash::FxHashSet;
use srs_attack::engine::{AttackSpec, AttackerCore, AttackerStats};
use srs_core::{build_defense, MitigationAction, RowOpKind, RowSwapDefense};
use srs_cpu::{AccessToken, CoreStatus, RequestSource, TraceCore};
use srs_dram::{
    AccessKind, AccessSink, ActivationEvent, ActivationSink, BankId, CompletedAccess, DramAddress,
    DramTiming, MaintenanceKind, MaintenanceOp, MemRequest, MemoryController, PhysAddr,
};
use srs_trackers::{
    AggressorTracker, HydraConfig, HydraTracker, MisraGriesConfig, MisraGriesTracker, TrackerKind,
};
use srs_workloads::{Trace, TraceRecord};

use crate::attribution::{AttributionReport, SubsystemTimers};
use crate::config::SystemConfig;
use crate::error::SimError;
use crate::faults::FaultInjector;
use crate::metrics::SimResult;
use crate::security::{ReportContext, SecurityTracker};
use crate::telemetry::{EventKind, Telemetry};

/// A memory operation waiting for queue space in the controller.
#[derive(Debug, Clone, Copy)]
struct DeferredAccess {
    addr: PhysAddr,
    /// Destination bank (decoded once at defer time; retries only need the
    /// bank to test for queue space).
    bank: BankId,
    is_write: bool,
    origin: Option<(usize, AccessToken)>,
}

/// Exact per-row activation counts for one bank over the current refresh
/// window: a linear-probed open-addressed table of `(row + 1, count)` pairs
/// keyed by a Fibonacci hash.
///
/// This sits on the per-activation hot path, where a general-purpose hash
/// map pays for its abstraction twice — hasher plumbing on every lookup and
/// a non-deterministic-by-default seed. The dedicated table is a pair of
/// flat arrays the increment touches at a single probe position in the
/// common case, and the maximum is taken by scanning the dense count array
/// at window rollover instead of comparing on every activation (the counts
/// are write-only until then).
#[derive(Debug, Clone)]
struct WindowRowCounts {
    /// `row + 1` of each occupied probe position, 0 = empty.
    keys: Vec<u64>,
    /// Activation count of the row at the same probe position; zero wherever
    /// `keys` is zero, so a maximum scan can sweep it without consulting the
    /// keys.
    counts: Vec<u64>,
    /// Occupied positions; the table doubles at 7/8 load.
    len: usize,
}

impl WindowRowCounts {
    /// Initial probe positions per bank shard; grows by doubling. 512 covers
    /// the distinct-rows-per-bank-per-window of every packaged workload
    /// without rehashing.
    const INITIAL_SLOTS: usize = 512;

    fn new() -> Self {
        Self { keys: vec![0; Self::INITIAL_SLOTS], counts: vec![0; Self::INITIAL_SLOTS], len: 0 }
    }

    /// Fibonacci-hash `key` into the current table.
    #[inline]
    fn bucket_of(key: u64, slots: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (slots - 1)
    }

    /// Count one activation of `row`.
    #[inline]
    fn increment(&mut self, row: u64) {
        if self.len * 8 >= self.keys.len() * 7 {
            self.grow();
        }
        let key = row + 1;
        let mask = self.keys.len() - 1;
        let mut pos = Self::bucket_of(key, self.keys.len());
        loop {
            let k = self.keys[pos];
            if k == key {
                self.counts[pos] += 1;
                return;
            }
            if k == 0 {
                self.keys[pos] = key;
                self.counts[pos] = 1;
                self.len += 1;
                return;
            }
            pos = (pos + 1) & mask;
        }
    }

    /// The largest per-row count in the table (0 when empty): empty probe
    /// positions hold a zero count, so this is a max-reduction over the
    /// dense count array.
    fn max_count(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    fn clear(&mut self) {
        if self.len > 0 {
            self.keys.fill(0);
            self.counts.fill(0);
            self.len = 0;
        }
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_slots]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; new_slots]);
        let mask = new_slots - 1;
        for (key, count) in old_keys.into_iter().zip(old_counts) {
            if key == 0 {
                continue;
            }
            let mut pos = Self::bucket_of(key, new_slots);
            while self.keys[pos] != 0 {
                pos = (pos + 1) & mask;
            }
            self.keys[pos] = key;
            self.counts[pos] = count;
        }
    }
}

/// A passively observed (tracker, defense) pair riding along a shared
/// trunk simulation.
///
/// The sharing-aware grid executor runs the common prefix of several grid
/// cells once, on a trunk system whose own mitigation is inert; each
/// branch cell's tracker and defense are attached as a probe that observes
/// the very same activation stream, window rollovers and tick times the
/// cell's from-scratch run would feed them. The probe *fires* at the first
/// tick where its cell would feed anything back into the simulation — a
/// mitigation trigger of an acting defense, or tracker-generated DRAM
/// traffic (Hydra's counter-table fills) — which is exactly the point up
/// to which the trunk's trajectory and the cell's from-scratch trajectory
/// are bit-identical.
pub(crate) struct MitigationProbe {
    pub(crate) tracker: Box<dyn AggressorTracker + Send>,
    pub(crate) defense: Box<dyn RowSwapDefense + Send>,
    /// Whether a `mitigate` decision feeds back into the simulation (false
    /// for the baseline defense, whose trigger handler does nothing).
    pub(crate) acts_on_mitigate: bool,
    /// The tick time during which the first feedback decision occurred.
    pub(crate) fired_at: Option<u64>,
}

impl Clone for MitigationProbe {
    fn clone(&self) -> Self {
        Self {
            tracker: self.tracker.clone_box(),
            defense: self.defense.clone_box(),
            acts_on_mitigate: self.acts_on_mitigate,
            fired_at: self.fired_at,
        }
    }
}

/// The full-system simulator for one workload under one configuration.
///
/// The core set is heterogeneous: trace-replaying victim cores plus the
/// closed-loop attacker cores added by [`SystemConfig::attack`]. Both
/// speak the [`RequestSource`] issue protocol — including the event-driven
/// engine's `next_ready_ns` contract — but are stored concretely-typed so
/// the per-tick engine loops keep static (inlinable) dispatch; a request's
/// global core index is its position in victims-then-attackers order.
///
/// A `System` is an explicit state machine over simulated time: the engine
/// clock lives in the struct, so a run can be advanced partway
/// ([`System::run_until_ns`]), snapshotted ([`System::fork`] — a deep copy
/// down to RNG and queue state), and resumed on either copy with results
/// bit-identical to an uninterrupted run.
pub struct System {
    config: SystemConfig,
    workload: String,
    cores: Vec<TraceCore>,
    /// Closed-loop attacker cores (empty for benign runs, which then skip
    /// the activation-feedback fan-out entirely).
    attackers: Vec<AttackerCore>,
    security: Option<SecurityTracker>,
    core_finish_ns: Vec<Option<u64>>,
    controller: MemoryController,
    tracker: Box<dyn AggressorTracker + Send>,
    defense: Box<dyn RowSwapDefense + Send>,
    pinned_rows: FxHashSet<(usize, u64)>,
    /// Reads enqueued in the controller whose completion a core still waits
    /// on. The waiter's identity rides inside the request itself
    /// ([`MemRequest::wait_token`]), so this is just the count — the
    /// completeness checks need nothing more.
    pending_reads: usize,
    deferred: VecDeque<DeferredAccess>,
    next_window_ns: u64,
    /// Per-bank shards of per-logical-row activation counts for the current
    /// refresh window. Sharding by bank keeps each table small and lets the
    /// window rollover reset state bank by bank without a global rebuild.
    bank_activations: Vec<WindowRowCounts>,
    /// Maximum per-row activation count observed in any completed stretch of
    /// a refresh window, folded from the shards at each rollover and once
    /// more when the run ends — the per-activation path only increments.
    max_row_activations: u64,
    rows_pinned: u64,
    pinned_hits: u64,
    /// The engine clock: the next tick [`System::engine_step`] will execute.
    now: u64,
    /// Whether the previous tick scheduled a demand request (the only way
    /// controller queue space appears); gates the deferred-retry pass.
    freed_queue_slot: bool,
    /// Branch probes of the sharing-aware executor (`None` once taken for a
    /// fork); empty on every normally-constructed system.
    probes: Vec<Option<MitigationProbe>>,
    /// Per-subsystem wall-time ledger; disarmed (and therefore never
    /// reading the clock) except under [`System::run_attributed`].
    timers: SubsystemTimers,
    /// Simulated-time telemetry recorder; disarmed (one branch per hook)
    /// unless the configuration arms it. Recording never mutates
    /// simulation state, so armed results are bit-identical to disarmed
    /// ones.
    telemetry: Telemetry,
    /// End-to-end fault model (bit flips + ECC), present only when the
    /// configuration carries an attack scenario with
    /// [`crate::faults::FaultsConfig::enabled`] set. Purely observational:
    /// it never feeds back into timing, queues or mitigation decisions, so
    /// enabling it cannot perturb any other result field.
    faults: Option<FaultInjector>,
    /// Structured errors recorded instead of panicking (capped retention;
    /// see [`System::sim_errors`]). Well-formed workloads never produce
    /// any — every entry is a malformed input the engine survived.
    sim_errors: Vec<SimError>,
}

impl Clone for System {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            workload: self.workload.clone(),
            cores: self.cores.clone(),
            attackers: self.attackers.clone(),
            security: self.security.clone(),
            core_finish_ns: self.core_finish_ns.clone(),
            controller: self.controller.clone(),
            tracker: self.tracker.clone_box(),
            defense: self.defense.clone_box(),
            pinned_rows: self.pinned_rows.clone(),
            pending_reads: self.pending_reads,
            deferred: self.deferred.clone(),
            next_window_ns: self.next_window_ns,
            bank_activations: self.bank_activations.clone(),
            max_row_activations: self.max_row_activations,
            rows_pinned: self.rows_pinned,
            pinned_hits: self.pinned_hits,
            now: self.now,
            freed_queue_slot: self.freed_queue_slot,
            probes: self.probes.clone(),
            timers: self.timers.clone(),
            telemetry: self.telemetry.clone(),
            faults: self.faults.clone(),
            sim_errors: self.sim_errors.clone(),
        }
    }
}

/// The streaming observer wired into the controller for one tick: it feeds
/// the aggressor tracker from the activation stream, completes core reads
/// from the completion stream, and queues the mitigation work the tick
/// produced (applied by the caller once the controller borrow ends).
struct TickObserver<'a> {
    tracker: &'a mut (dyn AggressorTracker + Send),
    defense: &'a mut (dyn RowSwapDefense + Send),
    cores: &'a mut [TraceCore],
    /// The reactive attacker cores the feedback fan-out targets; request
    /// origins index victims first, then attackers.
    attackers: &'a mut [AttackerCore],
    security: Option<&'a mut SecurityTracker>,
    pending_reads: &'a mut usize,
    bank_activations: &'a mut [WindowRowCounts],
    /// Passive branch probes of the sharing-aware executor (empty outside
    /// shared trunk runs).
    probes: &'a mut [Option<MitigationProbe>],
    timing: DramTiming,
    now: u64,
    actions: Vec<MitigationAction>,
    counter_ops: Vec<MaintenanceOp>,
    /// Wall-time ledger (disarmed outside attribution runs); the batch path
    /// laps its two phases into the security and tracker buckets.
    timers: &'a mut SubsystemTimers,
    /// Simulated-time telemetry recorder (disarmed unless configured).
    telemetry: &'a mut Telemetry,
    /// End-to-end fault model (absent unless the run enables it). The
    /// observer only *stages* flips — disturbance crossings push pending
    /// flips here, and `System::step_at` commits them against the defense's
    /// occupant map once the controller borrow ends, so both drain modes
    /// (batched and per-event) resolve occupants at the identical point.
    faults: Option<&'a mut FaultInjector>,
}

impl TickObserver<'_> {
    /// Closed-loop feedback and security accounting for one activation.
    ///
    /// Reactive sources (attacker cores) see every activation, including
    /// the defense's own maintenance activations — exactly the signal
    /// Juggernaut adapts to. Counter-table traffic is withheld: its
    /// sub-microsecond bank occupancy is below what an attacker can
    /// distinguish from demand interference, unlike a multi-microsecond row
    /// swap. Callers skip this entirely when `attackers` is empty.
    fn feed_attack_loop(&mut self, event: &ActivationEvent) {
        let counter_access = event.maintenance_kind == Some(MaintenanceKind::CounterAccess);
        let bank = event.bank.index();
        if !counter_access {
            for attacker in self.attackers.iter_mut() {
                attacker.observe_activation(
                    bank,
                    event.row,
                    event.logical_row,
                    event.maintenance,
                    self.now,
                );
            }
        }
        if let Some(security) = self.security.as_deref_mut() {
            security.on_activation(event, self.faults.as_deref_mut());
        }
    }

    /// Aggressor accounting for one demand activation: the per-row window
    /// count, the branch probes, the tracker update and any mitigation it
    /// triggers. Callers filter out maintenance activations first —
    /// mitigation-issued activations are charged by the attack models and
    /// statistics, not by the aggressor tracker (matching the hardware,
    /// where the mitigation's own row movements do not feed back into its
    /// tracker).
    fn track_demand(&mut self, event: &ActivationEvent) {
        let bank = event.bank.index();
        let logical_row = event.logical_row;
        self.bank_activations[bank].increment(logical_row);

        // Branch probes observe the identical demand-activation stream a
        // from-scratch run of their cell would feed its tracker; the first
        // decision that would feed back into the simulation marks the
        // divergence tick and freezes the probe.
        for slot in self.probes.iter_mut() {
            let Some(probe) = slot else { continue };
            if probe.fired_at.is_some() {
                continue;
            }
            let decision = probe.tracker.record_activation(bank, logical_row);
            if decision.extra_memory_accesses > 0 || (decision.mitigate && probe.acts_on_mitigate) {
                probe.fired_at = Some(self.now);
            }
        }

        // Saturation accounting brackets the two points that can saturate —
        // the tracker update and the defense's mitigation handler. Armed
        // telemetry gets an event at the point of increment; the report
        // totals are read once at the end of the run regardless, so a
        // disarmed recorder skips the counter reads entirely (and the event
        // stream stays bit-identical between engines, which visit the same
        // activation at the same tick).
        let saturation_before = if self.telemetry.armed() {
            self.tracker.saturation_events() + self.defense.saturation_events()
        } else {
            0
        };

        let decision = self.tracker.record_activation(bank, logical_row);
        if decision.extra_memory_accesses > 0 {
            // Hydra's memory-resident counter table traffic.
            let duration_ns =
                decision.extra_memory_accesses * (self.timing.t_rc + self.timing.t_cas);
            self.counter_ops.push(MaintenanceOp::new(
                event.bank,
                duration_ns,
                Vec::new(),
                MaintenanceKind::CounterAccess,
            ));
            self.telemetry.record_op(
                self.now,
                EventKind::CounterAccess,
                u32::try_from(bank).unwrap_or(u32::MAX),
                duration_ns,
            );
        }
        if decision.mitigate {
            self.telemetry.record_mitigation(
                self.now,
                u32::try_from(bank).unwrap_or(u32::MAX),
                logical_row,
            );
            let stamp = self.timers.stamp();
            self.actions.extend(self.defense.on_mitigation_trigger(bank, logical_row, self.now));
            SubsystemTimers::lap(stamp, &mut self.timers.defense_trigger_ns);
        }
        if self.telemetry.armed() {
            let saturation_after =
                self.tracker.saturation_events() + self.defense.saturation_events();
            if saturation_after > saturation_before {
                self.telemetry.record_saturation(
                    self.now,
                    u32::try_from(bank).unwrap_or(u32::MAX),
                    saturation_after - saturation_before,
                );
            }
        }
    }
}

impl ActivationSink for TickObserver<'_> {
    fn on_activation(&mut self, event: &ActivationEvent) {
        if !self.attackers.is_empty() {
            self.feed_attack_loop(event);
        }
        if event.maintenance {
            return;
        }
        self.track_demand(event);
    }

    /// The batched drain path: one virtual call per bank visit instead of
    /// one per activation.
    ///
    /// The batch is processed in two phases — attack-loop fan-out for every
    /// event first, then aggressor accounting for the demand events. The
    /// phases touch disjoint state (attackers and the security tracker
    /// versus window counts, probes, the tracker and the defense), and the
    /// events within a batch all carry the same controller visit, so the
    /// phase split is observationally identical to the per-event
    /// interleaving: every subsystem still sees the activations of one bank
    /// visit in issue order, before any event of the next visit.
    fn on_activation_batch(&mut self, events: &[ActivationEvent]) {
        if !self.attackers.is_empty() {
            let stamp = self.timers.stamp();
            for event in events {
                self.feed_attack_loop(event);
            }
            SubsystemTimers::lap(stamp, &mut self.timers.security_ns);
        }
        let stamp = self.timers.stamp();
        for event in events {
            if !event.maintenance {
                self.track_demand(event);
            }
        }
        SubsystemTimers::lap(stamp, &mut self.timers.tracker_raw_ns);
    }
}

impl AccessSink for TickObserver<'_> {
    fn on_access(&mut self, done: &CompletedAccess) {
        // The fault model observes every completed demand access — reads
        // classify damaged lines under the ECC, writes overwrite (heal)
        // them. This must run before the wait-token gate: writes carry no
        // token but still heal.
        if let Some(faults) = self.faults.as_deref_mut() {
            if let Some((bank, outcome)) = faults.on_access(&done.request, self.now) {
                if outcome == srs_dram::EccOutcome::Silent {
                    self.telemetry
                        .record_corrupted_read(self.now, u32::try_from(bank).unwrap_or(u32::MAX));
                }
            }
        }
        if let Some(token) = done.request.wait_token {
            *self.pending_reads -= 1;
            self.telemetry.record_read_latency(done.latency_ns());
            complete_source_read(
                self.cores,
                self.attackers,
                done.request.core,
                AccessToken(token),
                done.finish_ns.max(self.now),
            );
        }
    }
}

/// Deliver a read completion to the source identified by a global core
/// index, which counts victims first and attackers after them — the one
/// place that indexing convention is interpreted.
fn complete_source_read(
    cores: &mut [TraceCore],
    attackers: &mut [AttackerCore],
    core: usize,
    token: AccessToken,
    finish_ns: u64,
) {
    if let Some(victim) = cores.get_mut(core) {
        victim.complete_read(token, finish_ns);
    } else {
        attackers[core - cores.len()].complete_read(token, finish_ns);
    }
}

/// The inert tracker installed on a shared trunk: the trunk's own
/// mitigation must never observe, fire, or generate traffic — every branch
/// cell's real tracker rides along as a [`MitigationProbe`] instead.
#[derive(Debug, Clone)]
pub(crate) struct NullTracker;

impl AggressorTracker for NullTracker {
    fn record_activation(&mut self, _bank: usize, _row: u64) -> srs_trackers::TrackerDecision {
        srs_trackers::TrackerDecision::none()
    }

    fn estimated_count(&self, _bank: usize, _row: u64) -> u64 {
        0
    }

    fn reset_epoch(&mut self) {}

    fn swap_threshold(&self) -> u64 {
        u64::MAX
    }

    fn storage_bits(&self) -> u64 {
        0
    }

    fn clone_box(&self) -> Box<dyn AggressorTracker + Send> {
        Box::new(NullTracker)
    }

    fn may_emit_memory_traffic(&self) -> bool {
        false
    }
}

pub(crate) fn build_tracker(config: &SystemConfig) -> Box<dyn AggressorTracker + Send> {
    let mitigation = config.mitigation_config();
    let ts = mitigation.swap_threshold();
    match config.tracker {
        TrackerKind::MisraGries => Box::new(MisraGriesTracker::new(
            MisraGriesConfig::for_threshold(ts, mitigation.act_max_per_window, mitigation.banks),
        )),
        TrackerKind::Hydra => Box::new(HydraTracker::new(HydraConfig::for_threshold(
            ts,
            mitigation.banks,
            mitigation.rows_per_bank,
        ))),
    }
}

fn maintenance_kind(kind: RowOpKind) -> MaintenanceKind {
    match kind {
        RowOpKind::Swap => MaintenanceKind::Swap,
        RowOpKind::UnswapSwap => MaintenanceKind::UnswapSwap,
        RowOpKind::PlaceBack | RowOpKind::BulkUnswap => MaintenanceKind::PlaceBack,
        RowOpKind::CounterAccess => MaintenanceKind::CounterAccess,
    }
}

/// The telemetry event kind a defense row operation traces as (bulk
/// unswaps share the place-back track — they are place-backs in bulk).
fn telemetry_kind(kind: RowOpKind) -> EventKind {
    match kind {
        RowOpKind::Swap => EventKind::Swap,
        RowOpKind::UnswapSwap => EventKind::UnswapSwap,
        RowOpKind::PlaceBack | RowOpKind::BulkUnswap => EventKind::PlaceBack,
        RowOpKind::CounterAccess => EventKind::CounterAccess,
    }
}

/// The fixed-step engine's tick, and the time grid both engines quantize
/// state changes to (see `System::next_event_time`).
const STEP_NS: u64 = 25;

impl System {
    /// Build a system that runs `trace` on every core (rate mode, as in the
    /// paper's methodology).
    #[must_use]
    pub fn new(config: SystemConfig, trace: Trace) -> Self {
        let controller = MemoryController::new(config.dram.clone());
        let tracker = build_tracker(&config);
        let defense = build_defense(config.defense, config.mitigation_config());
        // All cores execute one immutable copy of the records; each core's
        // private address-space copy (so rate mode does not trivially share
        // every row) is an offset applied at issue time, not a per-core
        // rewritten clone of the whole trace.
        let records: Arc<[TraceRecord]> = Arc::from(trace.records.as_slice());
        let cores: Vec<TraceCore> = (0..config.cores)
            .map(|i| TraceCore::shared(config.core, records.clone(), (i as u64) << 33))
            .collect();
        let mut attackers = Vec::new();
        let mut security = None;
        if let Some(attack) = &config.attack {
            // The attacker knows the defense's swap threshold (the paper's
            // standard Kerckhoffs assumption); against the undefended
            // baseline the mitigation config degenerates to TRH itself.
            let t_s = config.mitigation_config().swap_threshold();
            for stream in 0..attack.attacker_cores.max(1) {
                attackers.push(AttackerCore::new(attack, &config.dram, t_s, stream as u64));
            }
            security = Some(SecurityTracker::new(
                config.t_rh,
                config.dram.rows_per_bank,
                config.dram.total_banks(),
            ));
        }
        let window = config.dram.refresh_window_ns;
        let total_banks = config.dram.total_banks();
        // The fault model only exists when a run can actually disturb rows
        // (an attack scenario) and explicitly opts in; benign runs carry no
        // injector, so their results and prefix sharing are untouched.
        let faults = (config.attack.is_some() && config.faults.enabled)
            .then(|| FaultInjector::new(&config.faults, &config.dram, config.t_rh, config.seed));
        Self {
            workload: trace.name.clone(),
            core_finish_ns: vec![None; cores.len()],
            attackers,
            security,
            cores,
            controller,
            tracker,
            defense,
            pinned_rows: FxHashSet::default(),
            pending_reads: 0,
            deferred: VecDeque::new(),
            next_window_ns: window,
            bank_activations: vec![WindowRowCounts::new(); total_banks],
            max_row_activations: 0,
            rows_pinned: 0,
            pinned_hits: 0,
            now: 0,
            freed_queue_slot: false,
            probes: Vec::new(),
            timers: SubsystemTimers::default(),
            telemetry: Telemetry::new(&config.telemetry),
            faults,
            sim_errors: Vec::new(),
            config,
        }
    }

    /// The configuration of this system.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn decode(&self, addr: PhysAddr) -> (BankId, DramAddress) {
        let d = self.controller.mapper().decode(addr);
        (d.bank_id(&self.config.dram), d)
    }

    /// The DRAM location a logical address currently maps to under the
    /// defense's row indirection: the physical address plus the physical
    /// row, ready for [`MemoryController::enqueue_at`].
    fn remapped_address(
        &self,
        addr: PhysAddr,
        decoded: &DramAddress,
        bank: BankId,
    ) -> (PhysAddr, u64) {
        let physical_row = self.defense.translate(bank.index(), decoded.row);
        if physical_row == decoded.row {
            // Common case: the defense has not displaced this row, so the
            // original address is already the right one — skip the
            // encode round-trip entirely.
            return (addr, decoded.row);
        }
        let remapped =
            DramAddress { row: physical_row % self.config.dram.rows_per_bank, ..*decoded };
        match self.controller.mapper().encode(&remapped) {
            Ok(target) => (target, remapped.row),
            // Unreachable for a decoded coordinate (the row is reduced into
            // range above), but fall back to the untranslated address
            // rather than panicking inside the hot path.
            Err(_) => (addr, decoded.row),
        }
    }

    fn apply_actions(&mut self, actions: Vec<MitigationAction>) {
        for action in actions {
            match action {
                MitigationAction::RowOperation { bank, kind, duration_ns, activations } => {
                    self.telemetry.record_op(
                        self.now,
                        telemetry_kind(kind),
                        u32::try_from(bank).unwrap_or(u32::MAX),
                        duration_ns,
                    );
                    let op = MaintenanceOp::new(
                        BankId::new(bank),
                        duration_ns,
                        activations,
                        maintenance_kind(kind),
                    );
                    let _ = self.controller.enqueue_maintenance(op);
                }
                MitigationAction::PinRow { bank, row } => {
                    self.telemetry.record_row_pin(
                        self.now,
                        u32::try_from(bank).unwrap_or(u32::MAX),
                        row,
                    );
                    if self.pinned_rows.insert((bank, row)) {
                        self.rows_pinned += 1;
                    }
                }
            }
        }
    }

    fn submit(
        &mut self,
        addr: PhysAddr,
        is_write: bool,
        origin: Option<(usize, AccessToken)>,
        now: u64,
    ) {
        let (bank, decoded) = self.decode(addr);
        let logical_row = decoded.row;

        // The emptiness guard keeps the hash off the per-access path for
        // every defense except an actively pinning Scale-SRS.
        if !self.pinned_rows.is_empty() && self.pinned_rows.contains(&(bank.index(), logical_row)) {
            // The row lives in the LLC for the rest of the window.
            self.pinned_hits += 1;
            if let Some((core, token)) = origin {
                // Attacker reads land here too, absorbed by a Scale-SRS
                // pinned row: LLC latency, no DRAM activation.
                complete_source_read(
                    &mut self.cores,
                    &mut self.attackers,
                    core,
                    token,
                    now + self.config.llc_hit_latency_ns,
                );
            }
            return;
        }

        // Row Hammer accounting happens in-stream when the controller issues
        // the ACT (see `TickObserver::on_activation`); the request only
        // carries the logical row so the activation event can report it.
        // The remap never changes the bank, so the decode work above is
        // shared with the controller via `enqueue_at`.
        let rit_stamp = self.timers.stamp();
        let (target, physical_row) = self.remapped_address(addr, &decoded, bank);
        SubsystemTimers::lap(rit_stamp, &mut self.timers.rit_ns);
        let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
        let core_id = origin.map_or(0, |(core, _)| core);
        let mut request = MemRequest::new(target, kind, core_id, now).with_logical_row(logical_row);
        if let Some((_, token)) = origin {
            request = request.with_wait_token(token.0);
        }
        match self.controller.enqueue_at(bank, physical_row, request) {
            Ok(_) => {
                if origin.is_some() {
                    self.pending_reads += 1;
                }
            }
            Err(srs_dram::DramError::QueueFull { .. }) => {
                // Transient backpressure: park the access and retry once a
                // slot frees up. Only queue pressure is retryable — any
                // other rejection would re-fail forever.
                self.deferred.push_back(DeferredAccess { addr, bank, is_write, origin });
                self.telemetry.record_queue_stall(
                    now,
                    u32::try_from(bank.index()).unwrap_or(u32::MAX),
                    self.deferred.len() as u64,
                );
            }
            Err(error) => {
                // A structurally unroutable access (malformed input): drop
                // it, complete the issuer so it cannot hang, and record the
                // structured error instead of panicking. Retention is
                // capped — the count is what matters past the first few.
                if self.sim_errors.len() < 64 {
                    self.sim_errors.push(SimError::UnroutableAccess { addr: addr.value(), error });
                }
                if let Some((core, token)) = origin {
                    complete_source_read(
                        &mut self.cores,
                        &mut self.attackers,
                        core,
                        token,
                        now + self.config.llc_hit_latency_ns,
                    );
                }
            }
        }
    }

    fn retry_deferred(&mut self, now: u64) {
        for _ in 0..self.deferred.len() {
            let Some(item) = self.deferred.pop_front() else { break };
            if self.controller.can_accept_bank(item.bank) {
                self.submit(item.addr, item.is_write, item.origin, now);
            } else {
                self.deferred.push_back(item);
            }
        }
    }

    fn handle_window_rollover(&mut self, now: u64) {
        while now >= self.next_window_ns {
            let boundary = self.next_window_ns;
            self.tracker.reset_epoch();
            let actions = self.defense.on_new_window(boundary);
            self.apply_actions(actions);
            // Branch probes see the same epoch boundaries their cell's
            // from-scratch run would. A pre-divergence defense has nothing
            // swapped, so its window work produces no actions — were it to
            // produce any, the trunk and the cell would already have
            // diverged, which the probe protocol rules out.
            for slot in &mut self.probes {
                let Some(probe) = slot else { continue };
                if probe.fired_at.is_none() {
                    probe.tracker.reset_epoch();
                    let actions = probe.defense.on_new_window(boundary);
                    debug_assert!(actions.is_empty(), "pre-divergence window work acted");
                }
            }
            self.pinned_rows.clear();
            for shard in &mut self.bank_activations {
                self.max_row_activations = self.max_row_activations.max(shard.max_count());
                shard.clear();
            }
            if let Some(security) = self.security.as_mut() {
                security.on_window_rollover();
            }
            self.next_window_ns += self.config.dram.refresh_window_ns;
        }
    }

    fn all_cores_finished(&self) -> bool {
        // Attacker cores never finish, so an attacked run terminates at
        // the simulated-time cap or at the first TRH crossing instead.
        self.attackers.is_empty() && self.cores.iter().all(TraceCore::is_finished)
    }

    /// Whether the attack scenario asked the run to stop at the first TRH
    /// crossing and one has been observed.
    fn stop_requested(&self) -> bool {
        self.config.attack.as_ref().is_some_and(|attack| attack.stop_at_first_crossing)
            && self.security.as_ref().is_some_and(SecurityTracker::crossed)
    }

    /// Whether nothing remains to simulate: every core reached its target
    /// and the memory system holds no outstanding work.
    fn is_complete(&self) -> bool {
        self.all_cores_finished()
            && self.pending_reads == 0
            && self.deferred.is_empty()
            && self.controller.is_idle()
    }

    /// One simulation tick at time `now`: window rollover, deferred
    /// retries, core issue, controller advancement (activations streaming
    /// into the tracker/defense, completions into the cores) and lazy
    /// defense work. Identical under both engines — they differ only in
    /// which times they visit.
    ///
    /// `retry_deferred` runs only when the previous tick scheduled a demand
    /// request: queue space appears no other way, so without one the retry
    /// pass would be a full pop/push rotation that provably leaves the
    /// deferred queue bit-identical — skipping it changes nothing but the
    /// wall clock (congested runs carry hundreds of deferred accesses).
    fn step_at(&mut self, now: u64, retry_deferred: bool) {
        self.handle_window_rollover(now);
        // Scrub deadlines elapse before any of this tick's accesses
        // complete, in both engines (the event engine visits every scrub
        // deadline via `next_event_time`).
        if let Some(faults) = self.faults.as_mut() {
            faults.maybe_scrub(now);
        }
        if retry_deferred {
            self.retry_deferred(now);
        }

        // Let every core issue work available at this time. `try_issue`
        // re-evaluates the core's status itself, so the loop only consults
        // `status` on the not-issuable path to stamp finish times. A core
        // whose finish time is already stamped is done for good (retired
        // work only grows), so the loop skips it outright — on mixed-speed
        // runs the tail of the simulation stops paying per-tick issue
        // probes for every long-finished core.
        for core_idx in 0..self.cores.len() {
            if self.core_finish_ns[core_idx].is_some() {
                continue;
            }
            // A core whose cached wake hint lies in the future cannot issue
            // at this tick (the hint is conservative, and completions clear
            // it) — skip the whole status walk. On memory-saturated runs
            // most cores are blocked on most ticks, so this comparison is
            // the common case.
            if self.cores[core_idx].wake_hint_ns() > now {
                continue;
            }
            if self.deferred.len() > 512 {
                break;
            }
            for _ in 0..8 {
                if let Some(issue) = self.cores[core_idx].try_issue(now) {
                    let origin = if issue.is_write { None } else { Some((core_idx, issue.token)) };
                    self.submit(PhysAddr::new(issue.addr), issue.is_write, origin, now);
                } else {
                    if self.core_finish_ns[core_idx].is_none()
                        && self.cores[core_idx].status(now) == CoreStatus::Finished
                    {
                        self.core_finish_ns[core_idx] = Some(now);
                    }
                    break;
                }
            }
        }
        // Attacker cores issue after the victims (their origin indices
        // follow the victims'); they never finish, so no stamping here.
        let victims = self.cores.len();
        for idx in 0..self.attackers.len() {
            if self.deferred.len() > 512 {
                break;
            }
            for _ in 0..8 {
                let Some(issue) = self.attackers[idx].try_issue(now) else { break };
                let origin = if issue.is_write { None } else { Some((victims + idx, issue.token)) };
                self.submit(PhysAddr::new(issue.addr), issue.is_write, origin, now);
            }
        }

        // Advance the memory controller; activations stream into the
        // tracker/defense and completions into the cores as they happen.
        // The stamp is taken before the observer borrows the ledger (it is
        // a plain `Option<Instant>`, so it survives the borrow).
        let controller_stamp = self.timers.stamp();
        let mut observer = TickObserver {
            tracker: self.tracker.as_mut(),
            defense: self.defense.as_mut(),
            cores: &mut self.cores,
            attackers: &mut self.attackers,
            security: self.security.as_mut(),
            pending_reads: &mut self.pending_reads,
            bank_activations: &mut self.bank_activations,
            probes: &mut self.probes,
            timing: self.config.dram.timing,
            now,
            actions: Vec::new(),
            counter_ops: Vec::new(),
            timers: &mut self.timers,
            telemetry: &mut self.telemetry,
            faults: self.faults.as_mut(),
        };
        self.controller.tick_into(now, &mut observer);
        let TickObserver { actions, counter_ops, .. } = observer;
        SubsystemTimers::lap(controller_stamp, &mut self.timers.controller_raw_ns);
        // Commit the flips this tick's disturbances staged, resolving each
        // victim's *current occupant* through the defense — a swapped-in row
        // carries the damage with it. This runs after the whole controller
        // drain so batched and per-event drains (whose phase split reorders
        // activation handling relative to mitigation triggers) resolve
        // occupants against the identical post-tick defense state.
        if self.faults.as_ref().is_some_and(FaultInjector::has_pending) {
            let defense = &*self.defense;
            if let Some(faults) = self.faults.as_mut() {
                for (bank, row) in faults.commit_pending(|b, r| defense.occupant(b, r)) {
                    self.telemetry.record_bit_flip(
                        now,
                        u32::try_from(bank).unwrap_or(u32::MAX),
                        row,
                    );
                }
            }
        }
        for op in counter_ops {
            let _ = self.controller.enqueue_maintenance(op);
        }
        if !actions.is_empty() {
            self.apply_actions(actions);
        }

        // Lazy defense work (SRS place-back).
        let lazy_stamp = self.timers.stamp();
        let actions = self.defense.on_tick(now);
        SubsystemTimers::lap(lazy_stamp, &mut self.timers.defense_lazy_ns);
        if !actions.is_empty() {
            self.apply_actions(actions);
        }
        // Probe defenses receive the identical tick cadence (SRS reschedules
        // its place-back deadline relative to the tick clock even while its
        // queue is empty); pre-divergence they never emit work.
        for slot in &mut self.probes {
            let Some(probe) = slot else { continue };
            if probe.fired_at.is_none() {
                let actions = probe.defense.on_tick(now);
                debug_assert!(actions.is_empty(), "pre-divergence tick work acted");
            }
        }
    }

    /// The next grid-aligned time the event-driven engine must visit after
    /// a tick at `now`.
    ///
    /// The fixed-step engine quantizes every state change to its `step_ns`
    /// grid (a completion finishing at 137 ns is observed at the 150 ns
    /// tick), so for bit-identical metrics the event-driven engine jumps to
    /// the smallest **grid point at or after** the earliest next event —
    /// exactly the tick at which the fixed-step engine would have seen it —
    /// and skips the empty grid points in between. Candidate events:
    ///
    /// * the next refresh-window rollover (defense epoch work is stamped
    ///   with the tick it runs at);
    /// * everything the controller schedules: bank-free times of banks with
    ///   queued work, deliverable completions, refresh deadlines
    ///   ([`MemoryController::next_event_ns`]);
    /// * each core's next self-generated ready time
    ///   ([`TraceCore::next_ready_ns`]);
    /// * the defense's next scheduled lazy action
    ///   ([`RowSwapDefense::next_action_ns`]);
    /// * the very next tick, whenever a deferred access might retry (the
    ///   tick freed a queue slot — deferred retries are no-ops until one
    ///   does), a finished core has not had its finish time recorded yet,
    ///   or the run is complete (the loop exit condition is itself
    ///   evaluated on the grid, so the final `elapsed_ns` matches too) —
    ///   the same applies when a requested stop-at-first-TRH-crossing has
    ///   latched, which both engines also evaluate on the grid;
    /// * the simulated-time cap, so the engines agree on the final tick
    ///   even when every other event lies beyond it.
    ///
    /// `freed_queue_slot` reports whether the tick at `now` scheduled any
    /// demand request (the only way controller queue space appears).
    fn next_event_time(&self, now: u64, freed_queue_slot: bool) -> u64 {
        // Dense fast path: every candidate is rounded up to the step grid,
        // so once *any* candidate falls within one step the answer is
        // exactly `now + STEP_NS` — and the controller's next event (an
        // O(1) read) is within one step on almost every tick of a
        // memory-saturated run. The remaining branches below return the
        // same value in that case, just more slowly.
        let controller_next = self.controller.next_event_ns(now);
        if controller_next <= now + STEP_NS {
            return now + STEP_NS;
        }
        // One pass over the cores collects everything the decision needs:
        // completion state, unstamped finish times, and the earliest
        // self-generated ready time.
        let mut all_finished = true;
        let mut unrecorded_finish = false;
        let mut core_next = u64::MAX;
        for (core, finish) in self.cores.iter().zip(&self.core_finish_ns) {
            if core.is_finished() {
                unrecorded_finish |= finish.is_none();
            } else {
                all_finished = false;
                if let Some(t) = core.next_ready_ns(now) {
                    core_next = core_next.min(t);
                }
            }
        }
        // Attacker cores never finish and feed their own ready times into
        // the candidate set (benign runs skip this loop entirely).
        for attacker in &self.attackers {
            all_finished = false;
            if let Some(t) = attacker.next_ready_ns(now) {
                core_next = core_next.min(t);
            }
        }
        let complete = all_finished
            && self.pending_reads == 0
            && self.deferred.is_empty()
            && self.controller.is_idle();
        if complete || unrecorded_finish || self.stop_requested() {
            return now + STEP_NS;
        }
        if !self.deferred.is_empty() && freed_queue_slot {
            return now + STEP_NS;
        }
        let mut next = self.config.max_sim_ns.min(self.next_window_ns);
        next = next.min(controller_next);
        if let Some(t) = self.defense.next_action_ns() {
            next = next.min(t);
        }
        // An armed telemetry recorder adds its next sample deadline as a
        // candidate so the time-skip engine visits every deadline the
        // fixed-step oracle would. Ticks visited only for sampling are
        // state no-ops (the fixed-step engine executes them anyway and
        // stays bit-identical), so arming cannot perturb results.
        if let Some(t) = self.telemetry.next_sample_ns() {
            next = next.min(t);
        }
        // The fault model's next scrub deadline: the time-skip engine must
        // visit the tick the fixed-step oracle would first scrub at, or the
        // two engines would classify reads against different damage state.
        if let Some(t) = self.faults.as_ref().and_then(FaultInjector::next_scrub_ns) {
            next = next.min(t);
        }
        if self.deferred.len() <= 512 {
            // Past the backpressure limit the issue loop does not run, so
            // core readiness cannot produce an event; cores re-enter the
            // candidate set through the queue-slot branch above.
            next = next.min(core_next);
        }
        // One grid round-up at the end: the clamp and the ceiling are both
        // monotone, so folding raw times first is equivalent to (and much
        // cheaper than) rounding every candidate.
        next.max(now + 1).div_ceil(STEP_NS) * STEP_NS
    }

    /// Run the simulation to completion (all cores reach their instruction
    /// target, or the simulated-time cap is hit) and return the results.
    ///
    /// Uses the event-driven time-skip engine: simulated time jumps from
    /// one grid-aligned event to the next instead of sweeping every bank
    /// and core each 25 ns. Produces bit-identical results to
    /// [`System::run_fixed_step`].
    pub fn run(mut self) -> SimResult {
        while !self.engine_done() {
            self.engine_step(true);
        }
        self.into_result()
    }

    /// Run the simulation with the reference fixed-step engine, visiting
    /// every 25 ns tick. Kept as the oracle the event-driven engine is
    /// equivalence-tested against; prefer [`System::run`].
    pub fn run_fixed_step(mut self) -> SimResult {
        while !self.engine_done() {
            self.engine_step(false);
        }
        self.into_result()
    }

    /// Run the simulation with the per-subsystem stopwatches armed,
    /// returning the breakdown alongside the (bit-identical) results.
    ///
    /// The timed pass is meant to be *separate* from throughput
    /// measurement: the stopwatch laps perturb the wall time by a few
    /// percent, so record headline numbers from [`System::run`] and use
    /// this run only for the breakdown. Attribution assumes the default
    /// batched drain (the per-event fallback path skips the batch-phase
    /// laps, leaving tracker and security time inside the controller
    /// bucket).
    pub fn run_attributed(mut self) -> (SimResult, AttributionReport) {
        self.timers = SubsystemTimers::armed();
        let start = Instant::now();
        while !self.engine_done() {
            self.engine_step(true);
        }
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let timers = std::mem::take(&mut self.timers);
        let report = AttributionReport::from_timers(&timers, wall_ns);
        (self.into_result(), report)
    }

    /// Fall back to delivering activations to the tick observer one virtual
    /// call at a time instead of one batch per bank visit. The two modes
    /// produce bit-identical simulations (the equivalence suites assert
    /// it); the per-event path exists as the comparison baseline and
    /// escape hatch.
    pub fn set_per_event_drain(&mut self, per_event: bool) {
        self.controller.set_batched_drain(!per_event);
    }

    /// The engine clock: the next tick this system will execute.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.now
    }

    /// Structured errors the engine recorded instead of panicking (empty
    /// for every well-formed workload). Retention is capped at 64 entries.
    #[must_use]
    pub fn sim_errors(&self) -> &[SimError] {
        &self.sim_errors
    }

    /// Whether the run has reached one of its exit conditions (time cap,
    /// all work drained, or a requested stop at the first TRH crossing).
    #[must_use]
    pub(crate) fn engine_done(&self) -> bool {
        self.now >= self.config.max_sim_ns || self.is_complete() || self.stop_requested()
    }

    /// Execute exactly one engine iteration: the tick at `self.now`, then
    /// advance the clock — to the next grid-aligned event under the
    /// event-driven engine, or by one step under the fixed-step oracle.
    pub(crate) fn engine_step(&mut self, event_driven: bool) {
        let demand_before = self.controller.stats().reads + self.controller.stats().writes;
        let (now, retry) = (self.now, self.freed_queue_slot);
        self.step_at(now, retry);
        self.telemetry_tick();
        let scheduled = self.controller.stats().reads + self.controller.stats().writes;
        self.freed_queue_slot = scheduled != demand_before;
        self.now = if event_driven {
            self.next_event_time(self.now, self.freed_queue_slot)
        } else {
            self.now + STEP_NS
        };
    }

    /// Telemetry work after the tick at `self.now`: latch TRH crossings
    /// and attack-phase transitions, and drain due sample deadlines. Pure
    /// observation — reads simulation state, never writes it — and a
    /// single-branch no-op when the recorder is disarmed.
    fn telemetry_tick(&mut self) {
        if !self.telemetry.armed() {
            return;
        }
        let now = self.now;
        if !self.telemetry.trh_latched()
            && self.security.as_ref().is_some_and(SecurityTracker::crossed)
        {
            self.telemetry.latch_trh_crossing(now);
        }
        for index in 0..self.attackers.len() {
            let in_guess = self.attackers[index].in_guess_phase();
            self.telemetry.latch_attack_phase(now, index, in_guess);
        }
        while self.telemetry.sample_due(now) {
            let queued = self.controller.total_queued() as u64;
            let deferred = self.deferred.len() as u64;
            let occupancy = self.tracker.occupancy();
            let live = self.defense.live_swapped_rows();
            self.telemetry.sample(now, queued, deferred, occupancy, live);
        }
    }

    /// Advance the event-driven engine until the clock reaches `t` (or the
    /// run finishes, whichever comes first). Resuming afterwards — on this
    /// system or on a [`System::fork`] of it — produces results
    /// bit-identical to an uninterrupted [`System::run`].
    pub fn run_until_ns(&mut self, t: u64) {
        while self.now < t && !self.engine_done() {
            self.engine_step(true);
        }
    }

    /// Snapshot this simulation: a deep, independent copy of every piece of
    /// mutable state — cores, controller queues, tracker tables, the
    /// defense's RIT/counters/RNG, security accounting and the engine
    /// clock. Running the fork and the original produces bit-identical
    /// results.
    #[must_use]
    pub fn fork(&self) -> System {
        self.clone()
    }

    /// Install an attack on this system mid-run — the adaptive-search
    /// fork protocol: warm a benign system to steady state once, then give
    /// each [`System::fork`] of it a different candidate attack.
    ///
    /// Attacker cores and the security tracker are built exactly as
    /// [`System::new`] would build them (the attacker knows the defense's
    /// swap threshold — the paper's Kerckhoffs assumption), so a fork that
    /// receives an attack at time `t` behaves identically to a from-scratch
    /// attacked run whose security accounting starts at `t`. Any previous
    /// attack state is replaced; branch probes are dropped (a candidate
    /// fork is never a sharing trunk).
    pub fn install_attack(&mut self, attack: AttackSpec) {
        self.probes.clear();
        let t_s = self.config.mitigation_config().swap_threshold();
        self.attackers.clear();
        for stream in 0..attack.attacker_cores.max(1) {
            self.attackers.push(AttackerCore::new(&attack, &self.config.dram, t_s, stream as u64));
        }
        self.security = Some(SecurityTracker::new(
            self.config.t_rh,
            self.config.dram.rows_per_bank,
            self.config.dram.total_banks(),
        ));
        // The fork now carries an attack, so an enabled fault model attaches
        // exactly as `System::new` would have built it. Pre-existing damage
        // is discarded with the previous attack state — each candidate
        // scores from the identical clean snapshot.
        self.faults = self.config.faults.enabled.then(|| {
            FaultInjector::new(
                &self.config.faults,
                &self.config.dram,
                self.config.t_rh,
                self.config.seed,
            )
        });
        self.telemetry.record_search_fork(self.now, attack.seed);
        self.config.attack = Some(attack);
    }

    /// Score a batch of candidate attacks from this warm snapshot: one
    /// [`System::fork`] per spec, each with [`System::install_attack`]
    /// applied and run to completion on `threads` workers.
    ///
    /// Results come back in spec order regardless of worker scheduling, so
    /// a generation's scores are deterministic. Forks are taken eagerly on
    /// the calling thread — the warm snapshot itself is never shared
    /// mutably — and every fork reuses this system's warmed state rather
    /// than re-simulating the warm-up.
    #[must_use]
    pub fn fork_each(&self, specs: Vec<AttackSpec>, threads: usize) -> Vec<SimResult> {
        let forks: Vec<(System, AttackSpec)> =
            specs.into_iter().map(|spec| (self.fork(), spec)).collect();
        crate::runner::parallel_map_ordered(forks, threads, |(mut fork, spec)| {
            fork.install_attack(spec);
            fork.run()
        })
    }

    /// Replace the mitigation pair (and the cell configuration labelling
    /// results) on this system — the second half of the sharing-aware
    /// fork: the memory-system state comes from the trunk snapshot, the
    /// tracker/defense state from the branch's probe.
    ///
    /// The caller guarantees `config` agrees with the trunk's configuration
    /// on everything that shaped the shared prefix (geometry, cores, seed,
    /// workload scale); only the mitigation axes (defense, `t_rh`, tracker,
    /// swap rate) may differ.
    pub(crate) fn fork_with_mitigation(
        &self,
        config: SystemConfig,
        tracker: Box<dyn AggressorTracker + Send>,
        defense: Box<dyn RowSwapDefense + Send>,
    ) -> System {
        let mut forked = self.clone();
        forked.probes.clear();
        forked.config = config;
        forked.tracker = tracker;
        forked.defense = defense;
        forked
    }

    /// Swap the tracker out (trunk construction installs the inert
    /// [`NullTracker`] so the trunk's own mitigation never fires).
    pub(crate) fn set_tracker(&mut self, tracker: Box<dyn AggressorTracker + Send>) {
        self.tracker = tracker;
    }

    /// Attach a branch probe; returns its index.
    pub(crate) fn attach_probe(&mut self, probe: MitigationProbe) -> usize {
        self.probes.push(Some(probe));
        self.probes.len() - 1
    }

    /// The tick during which probe `index` first fired, if it has.
    pub(crate) fn probe_fired_at(&self, index: usize) -> Option<u64> {
        self.probes[index].as_ref().and_then(|p| p.fired_at)
    }

    /// Detach probe `index`, yielding its tracker/defense state as of the
    /// start of the current tick.
    pub(crate) fn take_probe(&mut self, index: usize) -> MitigationProbe {
        // Invariant: the sharing executor takes each probe exactly once,
        // immediately after attaching it to the trunk it forked.
        #[allow(clippy::expect_used)]
        self.probes[index].take().expect("probe already taken")
    }

    /// Fold the finished run into its [`SimResult`].
    pub(crate) fn into_result(mut self) -> SimResult {
        let elapsed = self.now.max(1);
        let telemetry = self.telemetry.take_report();
        // Fold the still-open window's shard maxima: the per-activation path
        // only increments, so the running maximum is settled here and at
        // each rollover, never per event.
        for shard in &self.bank_activations {
            self.max_row_activations = self.max_row_activations.max(shard.max_count());
        }
        for slot in &mut self.core_finish_ns {
            if slot.is_none() {
                *slot = Some(elapsed);
            }
        }
        // IPC and instruction accounting cover the victim cores only;
        // attacker cores model no program (their work product is the
        // security report below).
        let per_core_ipc: Vec<f64> = self
            .cores
            .iter()
            .zip(&self.core_finish_ns)
            .map(|(core, finish)| core.ipc(finish.unwrap_or(elapsed).max(1)))
            .collect();
        let instructions = self.cores.iter().map(TraceCore::retired_instructions).sum();
        // A saturated structure (RIT live-list full, spilled tracker
        // counters, exhausted swap pool) keeps running under a defined
        // degraded contract; the count surfaces on the security report so a
        // weakened verdict is never silent.
        let saturation_events = self.defense.saturation_events() + self.tracker.saturation_events();
        let integrity = self.faults.take().map(FaultInjector::into_report);
        let security = self.security.take().map(|tracker| {
            // Invariant: `System::new` and `install_attack` construct the
            // security tracker only alongside an attack spec.
            #[allow(clippy::expect_used)]
            let attack = self.config.attack.as_ref().expect("tracker implies attack");
            let mut attackers = AttackerStats::default();
            for a in &self.attackers {
                let stats = a.stats();
                attackers.issued_reads += stats.issued_reads;
                attackers.mitigations_observed += stats.mitigations_observed;
                attackers.latency_spikes += stats.latency_spikes;
                attackers.guesses_made += stats.guesses_made;
            }
            tracker.into_report(ReportContext {
                attack: attack.name.clone(),
                attacker_cores: self.attackers.len(),
                elapsed_ns: elapsed,
                refresh_window_ns: self.config.dram.refresh_window_ns,
                swaps: self.defense.swaps_performed(),
                unswap_swaps: self.defense.unswap_swaps_performed(),
                attacker_reads: attackers.issued_reads,
                mitigations_observed: attackers.mitigations_observed,
                latency_spikes: attackers.latency_spikes,
                guesses_made: attackers.guesses_made,
                saturation_events,
            })
        });
        SimResult {
            workload: self.workload,
            defense: self.defense.name().to_string(),
            t_rh: self.config.t_rh,
            elapsed_ns: elapsed,
            per_core_ipc,
            instructions,
            controller: self.controller.stats().clone(),
            swaps: self.defense.swaps_performed(),
            rows_pinned: self.rows_pinned,
            pinned_hits: self.pinned_hits,
            max_row_activations_in_window: self.max_row_activations,
            security,
            integrity,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_core::DefenseKind;
    use srs_workloads::{hammer_trace, WorkloadSpec};

    fn tiny_config(defense: DefenseKind, t_rh: u64) -> SystemConfig {
        let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
        config.cores = 2;
        config.core.target_instructions = 6_000;
        config.trace_records_per_core = 2_000;
        config.dram.refresh_window_ns = 500_000;
        config.max_sim_ns = 4_000_000;
        config
    }

    fn tiny_trace(records: usize) -> Trace {
        WorkloadSpec {
            name: "test-hot".to_string(),
            footprint_bytes: 1 << 24,
            base_addr: 0,
            read_fraction: 0.7,
            mean_gap: 2,
            pattern: srs_workloads::AccessPattern::HotRows { hot_rows: 2, hot_fraction: 0.6 },
        }
        .generate(records, 11)
    }

    #[test]
    fn baseline_run_completes_and_reports_ipc() {
        let config = tiny_config(DefenseKind::Baseline, 1200);
        let result = System::new(config, tiny_trace(2_000)).run();
        assert!(result.instructions > 0);
        assert!(result.total_ipc() > 0.0);
        assert!(result.controller.reads > 0);
        assert_eq!(result.swaps, 0);
    }

    #[test]
    fn hammering_triggers_swaps_under_rrs() {
        let config = tiny_config(DefenseKind::Rrs { immediate_unswap: true }, 1200);
        let trace = hammer_trace("hammer", 0x10000, 2_000, 1 << 26, 5).into_trace();
        let result = System::new(config, trace).run();
        assert!(result.swaps > 0, "hammering must trigger swaps");
        assert!(result.controller.maintenance_activations > 0);
    }

    #[test]
    fn defense_slows_down_hot_workloads_relative_to_baseline() {
        let trace = tiny_trace(3_000);
        let baseline = System::new(tiny_config(DefenseKind::Baseline, 1200), trace.clone()).run();
        let rrs =
            System::new(tiny_config(DefenseKind::Rrs { immediate_unswap: true }, 1200), trace)
                .run();
        assert!(rrs.swaps > 0);
        assert!(
            rrs.total_ipc() <= baseline.total_ipc() * 1.02,
            "rrs {} vs baseline {}",
            rrs.total_ipc(),
            baseline.total_ipc()
        );
    }

    #[test]
    fn scale_srs_pins_outliers_under_targeted_hammering() {
        let mut config = tiny_config(DefenseKind::ScaleSrs, 2400);
        config.dram.refresh_window_ns = 2_000_000;
        let trace = hammer_trace("hammer", 0x4000, 6_000, 1 << 26, 9).into_trace();
        let result = System::new(config, trace).run();
        assert!(result.swaps > 0);
        assert!(result.rows_pinned > 0, "targeted hammering must pin the outlier row");
        assert!(result.pinned_hits > 0, "pinned rows must absorb accesses");
    }

    #[test]
    fn max_row_activation_statistic_sees_the_hot_row() {
        let config = tiny_config(DefenseKind::Baseline, 1200);
        let trace = hammer_trace("hammer", 0x8000, 1_500, 1 << 26, 3).into_trace();
        let result = System::new(config, trace).run();
        assert!(result.max_row_activations_in_window > 100);
    }

    #[test]
    fn armed_telemetry_does_not_perturb_results() {
        use crate::json::ToJson;
        use crate::telemetry::TelemetryConfig;
        let trace = hammer_trace("hammer", 0x10000, 2_000, 1 << 26, 5).into_trace();
        let disarmed_cfg = tiny_config(DefenseKind::Rrs { immediate_unswap: true }, 1200);
        let mut armed_cfg = disarmed_cfg.clone();
        armed_cfg.telemetry = TelemetryConfig::armed();
        let disarmed = System::new(disarmed_cfg, trace.clone()).run();
        let armed = System::new(armed_cfg.clone(), trace.clone()).run();
        assert!(disarmed.telemetry.is_none());
        // The 14 result keys are bit-identical whether or not the recorder
        // runs; the armed run carries the report alongside them.
        assert_eq!(disarmed.to_json().to_compact(), armed.to_json().to_compact());
        let report = armed.telemetry.expect("armed run must produce a report");
        assert!(!report.events.is_empty(), "hammering run must trace defense ops");
        assert!(report.counter("maintenance_ops").unwrap_or(0) > 0);
        assert!(report.series("bank_queue_depth").is_some_and(|s| !s.samples.is_empty()));
        // The fixed-step oracle agrees with the time-skip engine while armed.
        let fixed = System::new(armed_cfg, trace).run_fixed_step();
        let fixed_report = fixed.telemetry.expect("armed fixed-step run must produce a report");
        assert_eq!(report.to_json().to_compact(), fixed_report.to_json().to_compact());
    }
}
