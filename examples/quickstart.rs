//! Quickstart: build a Scale-SRS defense, hammer a row, and watch the
//! mitigation swap it away, detect the outlier and pin it in the LLC —
//! then run a small scenario grid through the experiment engine.
//!
//! Run with `cargo run --example quickstart`.

use scale_srs::core::{MitigationConfig, RowSwapDefense, ScaleSrs};
use scale_srs::sim::spec::ExperimentSpec;

fn main() {
    // Defend a DDR4 system against a Row Hammer threshold of 1200 with the
    // paper's Scale-SRS design point (swap rate 3, i.e. a swap every 400
    // activations of a row).
    let config = MitigationConfig::paper_default(1200, 3);
    let ts = config.swap_threshold();
    let mut defense = ScaleSrs::new(config);
    println!("Scale-SRS with TRH = 1200, swap threshold TS = {ts}");

    let bank = 0;
    let victim_row = 0x1234;
    println!("\nHammering logical row {victim_row:#x} of bank {bank}...");
    for swap in 1..=4u64 {
        // The aggressor tracker fires every TS activations; here we call the
        // trigger directly to show the defense's reaction.
        let now_ns = swap * 100_000;
        let actions = defense.on_mitigation_trigger(bank, victim_row, now_ns);
        let location = defense.translate(bank, victim_row);
        println!(
            "  after {:>4} activations: row lives at {location:#07x}, {} mitigation action(s)",
            swap * ts,
            actions.len(),
        );
    }

    println!(
        "\nSwaps performed: {}, rows pinned in the LLC: {:?}",
        defense.swaps_performed(),
        defense.pinned_rows()
    );
    println!("Storage per bank: {:.1} KB", defense.storage_report().total_kib());
    println!("\nThe third swap crossed the outlier threshold (3 x TS), so the row was");
    println!("pinned in the last-level cache for the rest of the refresh window and can");
    println!("no longer be hammered in DRAM.");

    // The same defenses inside the full-system simulator: the grid (2
    // defenses x 2 workloads, deliberately small so the quickstart finishes
    // in seconds) is *data* — the checked-in spec file that `srs-cli run
    // specs/quickstart.json` executes — resolved here into the identical
    // experiment the builder API would declare.
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/quickstart.json");
    let spec_text = std::fs::read_to_string(spec_path).expect("read specs/quickstart.json");
    let spec = ExperimentSpec::parse(&spec_text).expect("parse specs/quickstart.json");
    println!("\nRunning the '{}' scenario grid from specs/quickstart.json...\n", spec.name);
    let results = spec.to_experiment().expect("resolve spec registries").run();
    for r in &results {
        println!(
            "  {:>10} on {:<5} -> normalized IPC {:.3} ({} swaps)",
            r.scenario.defense,
            r.scenario.workload.name,
            r.normalized(),
            r.result.detail.swaps,
        );
    }
}
