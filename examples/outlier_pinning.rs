//! Demonstrate Scale-SRS's outlier detection and LLC pinning end to end: a
//! targeted hammering trace keeps re-triggering swaps of the same row until
//! the swap-tracking counter crosses 3 x TS, at which point the row is
//! pinned in the LLC and stops reaching DRAM.
//!
//! Run with `cargo run --release --example outlier_pinning`.

use scale_srs::attack::outlier;
use scale_srs::core::DefenseKind;
use scale_srs::sim::{System, SystemConfig};
use scale_srs::workloads::hammer_trace;

fn main() {
    let t_rh = 2400;
    let mut config = SystemConfig::scaled_for_speed(DefenseKind::ScaleSrs, t_rh);
    config.cores = 1;
    config.core.target_instructions = 40_000;
    config.dram.refresh_window_ns = 4_000_000;

    let trace = hammer_trace("targeted-hammer", 0x4000, 20_000, 1 << 26, 7).into_trace();
    println!("Running a targeted hammering trace against Scale-SRS (TRH = {t_rh})...\n");
    let result = System::new(config, trace).run();

    println!("Swaps performed:          {}", result.swaps);
    println!("Outlier rows pinned:      {}", result.rows_pinned);
    println!("Accesses served from LLC: {}", result.pinned_hits);
    println!("Swap ACT fraction:        {:.2}%", result.swap_traffic_fraction() * 100.0);
    println!("Max row ACTs per window:  {}", result.max_row_activations_in_window);

    println!("\nHow rare are outliers under *benign* or untargeted traffic?");
    for swap_rate in [3u64, 4, 5, 6] {
        let days = outlier::days_until_outliers(4800, swap_rate, 3);
        println!(
            "  swap rate {swap_rate}: a window with 3 simultaneous outliers appears every {:.1} days",
            days
        );
    }
    println!("\nBecause outliers are this rare, Scale-SRS can run at swap rate 3 and only");
    println!("occasionally dedicate a few LLC sets to pinned rows.");
}
