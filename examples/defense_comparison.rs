//! Compare the performance of the baseline, RRS, SRS and Scale-SRS on a
//! Row-Hammer-prone workload using the full-system simulator, the way
//! Figures 12 and 14 of the paper are produced.
//!
//! Run with `cargo run --release --example defense_comparison`.

use scale_srs::core::DefenseKind;
use scale_srs::sim::{System, SystemConfig};
use scale_srs::workloads::all_workloads;

fn main() {
    let t_rh = 1200;
    let workload = all_workloads().into_iter().find(|w| w.name == "gcc").expect("gcc exists");
    println!("Workload: {} (hot-row heavy), TRH = {t_rh}\n", workload.name);

    let kinds = [
        DefenseKind::Baseline,
        DefenseKind::Rrs { immediate_unswap: true },
        DefenseKind::Srs,
        DefenseKind::ScaleSrs,
    ];
    let mut baseline_ipc = None;
    println!(
        "{:>14} {:>10} {:>8} {:>12} {:>10} {:>12}",
        "defense", "IPC", "swaps", "swap ACT %", "pins", "normalized"
    );
    for kind in kinds {
        let config = SystemConfig::scaled_for_speed(kind, t_rh);
        let trace = workload.spec().generate(config.trace_records_per_core, config.seed);
        let result = System::new(config, trace).run();
        let ipc = result.total_ipc();
        if kind == DefenseKind::Baseline {
            baseline_ipc = Some(ipc);
        }
        let normalized = baseline_ipc.map_or(1.0, |b| ipc / b);
        println!(
            "{:>14} {:>10.3} {:>8} {:>11.2}% {:>10} {:>12.3}",
            result.defense,
            ipc,
            result.swaps,
            result.swap_traffic_fraction() * 100.0,
            result.rows_pinned,
            normalized
        );
    }
    println!("\nScale-SRS swaps roughly half as often as RRS (swap rate 3 vs 6) and avoids");
    println!("unswap-swap traffic entirely, which is where its smaller slowdown comes from.");
}
