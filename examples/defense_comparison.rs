//! Compare the performance of the baseline, RRS, SRS and Scale-SRS on a
//! Row-Hammer-prone workload, the way Figures 12 and 14 of the paper are
//! produced — the grid is the checked-in `specs/defense_comparison.json`
//! (also runnable as `srs-cli run specs/defense_comparison.json`), resolved
//! through the spec registries and executed by the experiment engine.
//!
//! Run with `cargo run --release --example defense_comparison`.

use scale_srs::sim::spec::ExperimentSpec;

fn main() {
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/defense_comparison.json");
    let spec_text = std::fs::read_to_string(spec_path).expect("read spec file");
    let spec = ExperimentSpec::parse(&spec_text).expect("parse spec file");
    // Resolve before reading axes: an edited spec with an empty axis gets
    // the structured SpecError, not an index panic on `thresholds[0]`.
    let experiment = spec.to_experiment().expect("resolve spec registries");
    let t_rh = spec.thresholds[0];
    println!("Workload: {} (hot-row heavy), TRH = {t_rh}\n", spec.workloads.join(", "));

    let results = experiment.run();

    println!(
        "{:>14} {:>10} {:>8} {:>12} {:>10} {:>12}",
        "defense", "IPC", "swaps", "swap ACT %", "pins", "normalized"
    );
    // Results come back in the declared defense order, run-to-run stable,
    // so the Baseline cell is first; print each design's *raw* IPC ratio
    // against it (uncapped — on this dense synthetic trace Scale-SRS's LLC
    // pinning can genuinely beat the unprotected baseline).
    let baseline_ipc = results[0].result.detail.total_ipc();
    for r in &results {
        let detail = &r.result.detail;
        println!(
            "{:>14} {:>10.3} {:>8} {:>11.2}% {:>10} {:>12.3}",
            detail.defense,
            detail.total_ipc(),
            detail.swaps,
            detail.swap_traffic_fraction() * 100.0,
            detail.rows_pinned,
            detail.total_ipc() / baseline_ipc,
        );
    }
    println!("\nScale-SRS swaps roughly half as often as RRS (swap rate 3 vs 6) and avoids");
    println!("unswap-swap traffic entirely, which is where its smaller slowdown comes from.");
}
