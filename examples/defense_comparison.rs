//! Compare the performance of the baseline, RRS, SRS and Scale-SRS on a
//! Row-Hammer-prone workload, the way Figures 12 and 14 of the paper are
//! produced — declared as one scenario grid over the defense axis and
//! executed by the experiment engine.
//!
//! Run with `cargo run --release --example defense_comparison`.

use scale_srs::core::DefenseKind;
use scale_srs::sim::Experiment;
use scale_srs::workloads::all_workloads;

fn main() {
    let t_rh = 1200;
    let workload = all_workloads().into_iter().find(|w| w.name == "gcc").expect("gcc exists");
    println!("Workload: {} (hot-row heavy), TRH = {t_rh}\n", workload.name);

    let results = Experiment::new()
        .with_defenses(vec![
            DefenseKind::Baseline,
            DefenseKind::Rrs { immediate_unswap: true },
            DefenseKind::Srs,
            DefenseKind::ScaleSrs,
        ])
        .with_thresholds(vec![t_rh])
        .with_workloads(vec![workload])
        .run();

    println!(
        "{:>14} {:>10} {:>8} {:>12} {:>10} {:>12}",
        "defense", "IPC", "swaps", "swap ACT %", "pins", "normalized"
    );
    // Results come back in the declared defense order, run-to-run stable,
    // so the Baseline cell is first; print each design's *raw* IPC ratio
    // against it (uncapped — on this dense synthetic trace Scale-SRS's LLC
    // pinning can genuinely beat the unprotected baseline).
    let baseline_ipc = results[0].result.detail.total_ipc();
    for r in &results {
        let detail = &r.result.detail;
        println!(
            "{:>14} {:>10.3} {:>8} {:>11.2}% {:>10} {:>12.3}",
            detail.defense,
            detail.total_ipc(),
            detail.swaps,
            detail.swap_traffic_fraction() * 100.0,
            detail.rows_pinned,
            detail.total_ipc() / baseline_ipc,
        );
    }
    println!("\nScale-SRS swaps roughly half as often as RRS (swap rate 3 vs 6) and avoids");
    println!("unswap-swap traffic entirely, which is where its smaller slowdown comes from.");
}
