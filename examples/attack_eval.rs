//! In-simulator attack evaluation: drive the shipped attack-pattern
//! library through the real controller, trackers and defenses on an
//! attack × defense grid, and cross-validate the simulated
//! time-to-TRH-crossing ranking against the analytical Juggernaut model.
//!
//! This is the first experiment that closes the loop between the attack
//! math (`srs_attack::juggernaut`) and the simulator: the analytical model
//! says RRS falls in under a day while SRS/Scale-SRS resist for years; the
//! simulated grid must reproduce that ordering (RRS ≪ SRS ≤ Scale-SRS) at
//! its scaled-down geometry, or this example exits non-zero.
//!
//! Run with `cargo run --release --example attack_eval`; set
//! `SRS_ATTACK_SMOKE=1` for the reduced CI grid. Writes
//! `BENCH_attack.json` next to the workspace root (protocol in
//! EXPERIMENTS.md).
//!
//! The grids are the checked-in `specs/attack_eval.json` (8 ms refresh
//! window, TRH 600) and `specs/attack_eval_smoke.json` (TRH 300, crossing
//! in ~1.6 ms so the grid stays CI-sized) — also runnable directly as
//! `srs-cli run specs/attack_eval.json`; the paper-scale analytical
//! numbers are reported alongside for the same TRH.

use std::cmp::Ordering;

use scale_srs::attack::juggernaut;
use scale_srs::attack::search::shipped_candidates;
use scale_srs::core::DefenseKind;
use scale_srs::sim::json::{obj, Json, ToJson as _};
use scale_srs::sim::scenario::results_where;
use scale_srs::sim::search::Score;
use scale_srs::sim::spec::{parse_attack, ExperimentSpec, SearchSpec};
use scale_srs::sim::{default_threads, run_search, score_from_report, warm_system, ScenarioResult};

fn fmt_crossing(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.2} ms", ns as f64 / 1e6),
        None => "not broken".to_string(),
    }
}

fn main() {
    let smoke = std::env::var("SRS_ATTACK_SMOKE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let spec_path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/specs/attack_eval_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/specs/attack_eval.json")
    };
    let spec_text = std::fs::read_to_string(spec_path).expect("read attack-eval spec");
    let spec = ExperimentSpec::parse(&spec_text).expect("parse attack-eval spec");
    // Resolve before reading axes: an edited spec with an empty or bad axis
    // gets the structured SpecError, not an index panic below.
    let experiment = spec.to_experiment().expect("resolve attack-eval spec");
    let t_rh: u64 = spec.thresholds[0];
    // The same registry entries the grid will run, for per-attack analysis.
    let attacks: Vec<_> =
        spec.attacks.iter().map(|n| parse_attack(n).expect("shipped attack")).collect();
    println!(
        "== In-simulator attack evaluation (TRH {t_rh}, {} cells{}) ==\n",
        experiment.job_count(),
        if smoke { ", smoke" } else { "" }
    );
    let results = experiment.run();

    println!(
        "{:<22} {:<12} {:>14} {:>9} {:>9} {:>11} {:>8}",
        "attack", "defense", "time-to-break", "max-prsr", "latent", "swaps/win", "norm"
    );
    let mut cells: Vec<Json> = Vec::with_capacity(results.len());
    for r in &results {
        let security = r.result.detail.security.as_ref().expect("attacked cell");
        println!(
            "{:<22} {:<12} {:>14} {:>9} {:>9} {:>11.1} {:>8.3}",
            security.attack,
            r.result.defense,
            fmt_crossing(security.first_crossing_ns),
            security.max_victim_pressure,
            security.latent_on_hottest_row,
            security.swaps_per_window,
            r.result.normalized_performance,
        );
        // The full report plus the cell's normalized performance, emitted
        // through the same codec the schema-validation tests parse with.
        let mut cell = security.to_json();
        if let Json::Object(pairs) = &mut cell {
            pairs.push(("defense".to_string(), Json::from(r.result.defense.as_str())));
            pairs.push((
                "normalized_performance".to_string(),
                r.result.normalized_performance.into(),
            ));
        }
        cells.push(cell);
    }

    // Cross-validation against the analytical Juggernaut model at the same
    // TRH (paper-scale geometry): the *ordering* must agree even though the
    // absolute scales differ (the simulation runs an 8 ms window).
    let rrs_days = juggernaut::time_to_break_rrs_days(t_rh, 6);
    let srs_days = juggernaut::time_to_break_srs_days(t_rh, 6);
    println!("\nAnalytical Juggernaut at TRH {t_rh} (paper-scale, swap rate 6):");
    println!("  RRS breaks in {rrs_days:.4} days; SRS resists {srs_days:.1} days");

    // Simulated ranking per attack: every defense's crossing time, with
    // "never within the cap" treated as slower than any crossing.
    let crossing = |results: &[ScenarioResult], defense: DefenseKind, attack: &str| {
        results_where(results, |s| {
            s.defense == defense && s.attack.as_ref().is_some_and(|a| a.name == attack)
        })
        .first()
        .and_then(|r| r.detail.security.as_ref().and_then(|sec| sec.first_crossing_ns))
    };
    let mut consistent = true;
    for attack in &attacks {
        let rrs = crossing(&results, DefenseKind::Rrs { immediate_unswap: true }, &attack.name);
        let srs = crossing(&results, DefenseKind::Srs, &attack.name);
        let scale = crossing(&results, DefenseKind::ScaleSrs, &attack.name);
        let baseline = crossing(&results, DefenseKind::Baseline, &attack.name);
        // The paper's ordering: the baseline falls fastest; SRS and
        // Scale-SRS must never be broken faster than RRS — and for the
        // Juggernaut patterns RRS must actually fall while SRS/Scale-SRS
        // hold (RRS ≪ SRS ≤ Scale-SRS).
        let rrs_vs_srs = match (rrs, srs) {
            (Some(r), Some(s)) => r < s,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => true,
        };
        let srs_and_scale_hold = srs.is_none() && scale.is_none();
        let baseline_falls = baseline.is_some();
        let juggernaut_breaks_rrs = !attack.name.starts_with("juggernaut")
            || attack.name == "juggernaut-multibank"
            || rrs.is_some();
        let ok = rrs_vs_srs && srs_and_scale_hold && baseline_falls && juggernaut_breaks_rrs;
        consistent &= ok;
        println!(
            "  {:<22} baseline {} | rrs {} | srs {} | scale-srs {}  [{}]",
            attack.name,
            fmt_crossing(baseline),
            fmt_crossing(rrs),
            fmt_crossing(srs),
            fmt_crossing(scale),
            if ok { "consistent" } else { "INCONSISTENT" },
        );
    }
    println!(
        "\nSimulated ranking vs analytical model: {}",
        if consistent {
            "CONSISTENT (RRS \u{226a} SRS \u{2264} Scale-SRS)"
        } else {
            "INCONSISTENT"
        }
    );

    // Snapshot-powered worst-case search: evolve attackers per defense from
    // one warm fork point and compare against the shipped library scored
    // through the identical snapshot path. Generation 0 seeds from that
    // library, so on the undefended baseline the champion can never be
    // weaker than the best shipped pattern — asserted below.
    let (search_generations, search_population) = if smoke { (2, 6) } else { (4, 8) };
    let threads = default_threads();
    println!("\n== Worst-case attacker search ({search_generations} generations, population {search_population}) ==");
    println!(
        "{:<12} {:>22} {:>14} {:>22} {:>14} {:>12}",
        "defense", "found", "time-to-break", "shipped best", "time-to-break", "not weaker"
    );
    let mut worst_case: Vec<Json> = Vec::new();
    let mut found_not_weaker_on_baseline = true;
    for (cell, defense) in spec.defenses.iter().enumerate() {
        let mut sspec = spec.clone();
        sspec.attacks = Vec::new();
        sspec.search = Some(SearchSpec {
            population: search_population,
            generations: search_generations,
            warmup_ns: 200_000,
            cell,
            ..SearchSpec::default()
        });
        let search = sspec.search.clone().expect("search block was just installed");

        // Shipped library through the same warm-fork scoring path.
        let warm = warm_system(&sspec, &search).expect("warm the search cell");
        let shipped = shipped_candidates();
        let shipped_results =
            warm.fork_each(shipped.iter().map(|c| c.to_attack_spec()).collect(), threads);
        let shipped_scores: Vec<Score> = shipped_results
            .iter()
            .map(|r| score_from_report(r.security.as_ref().expect("attacked run")))
            .collect();
        let shipped_best = (0..shipped.len())
            .max_by(|&a, &b| shipped_scores[a].strength(&shipped_scores[b]))
            .expect("shipped library is non-empty");

        let out = std::env::temp_dir().join(format!("srs_attack_eval_search_{defense}.jsonl"));
        let outcome =
            run_search(&sspec, &out, false, threads, None, &mut |_| {}).expect("worst-case search");
        let found = &outcome.best;
        let not_weaker = found.score.strength(&shipped_scores[shipped_best]) != Ordering::Less;
        if defense == "baseline" {
            found_not_weaker_on_baseline &= not_weaker;
        }
        println!(
            "{:<12} {:>22} {:>14} {:>22} {:>14} {:>12}",
            defense,
            found.candidate.name,
            fmt_crossing(found.score.first_crossing_ns),
            shipped[shipped_best].name,
            fmt_crossing(shipped_scores[shipped_best].first_crossing_ns),
            not_weaker,
        );
        worst_case.push(obj(vec![
            ("defense", Json::from(defense.as_str())),
            ("t_rh", t_rh.into()),
            ("generations", search_generations.into()),
            ("population", search_population.into()),
            (
                "found",
                obj(vec![
                    ("name", Json::from(found.candidate.name.as_str())),
                    ("pattern", Json::from(found.candidate.pattern.label())),
                    ("first_crossing_ns", found.score.first_crossing_ns.into()),
                    ("pressure_ratio", found.score.pressure_ratio().into()),
                ]),
            ),
            (
                "shipped_best",
                obj(vec![
                    ("name", Json::from(shipped[shipped_best].name.as_str())),
                    ("first_crossing_ns", shipped_scores[shipped_best].first_crossing_ns.into()),
                    ("pressure_ratio", shipped_scores[shipped_best].pressure_ratio().into()),
                ]),
            ),
            ("found_not_weaker", not_weaker.into()),
        ]));
    }

    let json = obj(vec![
        ("t_rh", t_rh.into()),
        ("smoke", smoke.into()),
        ("analytical", obj(vec![("rrs_days", rrs_days.into()), ("srs_days", srs_days.into())])),
        ("ranking_consistent", consistent.into()),
        ("cells", Json::Array(cells)),
        ("worst_case", Json::Array(worst_case)),
    ])
    .to_pretty();
    std::fs::write("BENCH_attack.json", json).expect("write BENCH_attack.json");
    println!("wrote BENCH_attack.json");

    assert!(consistent, "simulated defense ranking diverged from the analytical model");
    assert!(
        found_not_weaker_on_baseline,
        "worst-case search regressed below the shipped library on the baseline"
    );
}
