//! In-simulator attack evaluation: drive the shipped attack-pattern
//! library through the real controller, trackers and defenses on an
//! attack × defense grid, and cross-validate the simulated
//! time-to-TRH-crossing ranking against the analytical Juggernaut model.
//!
//! This is the first experiment that closes the loop between the attack
//! math (`srs_attack::juggernaut`) and the simulator: the analytical model
//! says RRS falls in under a day while SRS/Scale-SRS resist for years; the
//! simulated grid must reproduce that ordering (RRS ≪ SRS ≤ Scale-SRS) at
//! its scaled-down geometry, or this example exits non-zero.
//!
//! Run with `cargo run --release --example attack_eval`; set
//! `SRS_ATTACK_SMOKE=1` for the reduced CI grid. Writes
//! `BENCH_attack.json` next to the workspace root (protocol in
//! EXPERIMENTS.md).
//!
//! The scaled grid (8 ms refresh window, TRH 600 / 300 in smoke mode)
//! keeps runs in test-sized simulated time; the paper-scale analytical
//! numbers are reported alongside for the same TRH.

use std::fmt::Write as _;

use scale_srs::attack::engine::shipped_patterns;
use scale_srs::attack::juggernaut;
use scale_srs::core::DefenseKind;
use scale_srs::sim::scenario::{results_where, Experiment};
use scale_srs::sim::{ScenarioResult, SystemConfig};
use scale_srs::workloads::all_workloads;

/// Full-mode grid cell: victim + attacker under an 8 ms refresh window,
/// long enough for RRS's latent-harvest crossing (~4.5 ms at TRH 600).
fn eval_config(defense: DefenseKind, t_rh: u64) -> SystemConfig {
    let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
    config.cores = 1;
    config.core.target_instructions = u64::MAX / 2;
    config.trace_records_per_core = 2_000;
    config.dram.refresh_window_ns = 8_000_000;
    config.max_sim_ns = 6_000_000;
    config
}

/// Smoke-mode cell: TRH 300 crosses in ~1.6 ms, so the whole grid stays
/// CI-sized.
fn smoke_config(defense: DefenseKind, t_rh: u64) -> SystemConfig {
    let mut config = eval_config(defense, t_rh);
    config.max_sim_ns = 2_500_000;
    config
}

fn fmt_crossing(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.2} ms", ns as f64 / 1e6),
        None => "not broken".to_string(),
    }
}

fn json_opt(ns: Option<u64>) -> String {
    ns.map_or("null".to_string(), |v| v.to_string())
}

fn main() {
    let smoke = std::env::var("SRS_ATTACK_SMOKE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let t_rh: u64 = if smoke { 300 } else { 600 };
    let attacks = if smoke {
        shipped_patterns().into_iter().filter(|a| a.name == "juggernaut").collect()
    } else {
        shipped_patterns()
    };
    let defenses = vec![
        DefenseKind::Baseline,
        DefenseKind::Rrs { immediate_unswap: true },
        DefenseKind::Srs,
        DefenseKind::ScaleSrs,
    ];
    // A lightly loaded victim, so the security metrics isolate the attack.
    let victim: Vec<_> = all_workloads().into_iter().filter(|w| w.name == "povray").collect();

    let experiment = Experiment::new()
        .with_defenses(defenses.clone())
        .with_workloads(victim)
        .with_thresholds(vec![t_rh])
        .with_attacks(attacks.clone())
        .with_config_fn(if smoke { smoke_config } else { eval_config });
    println!(
        "== In-simulator attack evaluation (TRH {t_rh}, {} cells{}) ==\n",
        experiment.job_count(),
        if smoke { ", smoke" } else { "" }
    );
    let results = experiment.run();

    println!(
        "{:<22} {:<12} {:>14} {:>9} {:>9} {:>11} {:>8}",
        "attack", "defense", "time-to-break", "max-prsr", "latent", "swaps/win", "norm"
    );
    let mut cells_json = String::new();
    for r in &results {
        let security = r.result.detail.security.as_ref().expect("attacked cell");
        println!(
            "{:<22} {:<12} {:>14} {:>9} {:>9} {:>11.1} {:>8.3}",
            security.attack,
            r.result.defense,
            fmt_crossing(security.first_crossing_ns),
            security.max_victim_pressure,
            security.latent_on_hottest_row,
            security.swaps_per_window,
            r.result.normalized_performance,
        );
        let _ = write!(
            cells_json,
            concat!(
                "    {{\"attack\": \"{}\", \"defense\": \"{}\", ",
                "\"first_crossing_ns\": {}, \"max_victim_pressure\": {}, ",
                "\"latent_on_hottest_row\": {}, \"unswap_swaps\": {}, ",
                "\"swaps_per_window\": {:.3}, \"attacker_reads\": {}, ",
                "\"mitigations_observed\": {}, \"latency_spikes\": {}, ",
                "\"normalized_performance\": {:.6}}},\n"
            ),
            security.attack,
            r.result.defense,
            json_opt(security.first_crossing_ns),
            security.max_victim_pressure,
            security.latent_on_hottest_row,
            security.unswap_swaps,
            security.swaps_per_window,
            security.attacker_reads,
            security.mitigations_observed,
            security.latency_spikes,
            r.result.normalized_performance,
        );
    }
    let cells_json = cells_json.trim_end_matches(",\n").to_string();

    // Cross-validation against the analytical Juggernaut model at the same
    // TRH (paper-scale geometry): the *ordering* must agree even though the
    // absolute scales differ (the simulation runs an 8 ms window).
    let rrs_days = juggernaut::time_to_break_rrs_days(t_rh, 6);
    let srs_days = juggernaut::time_to_break_srs_days(t_rh, 6);
    println!("\nAnalytical Juggernaut at TRH {t_rh} (paper-scale, swap rate 6):");
    println!("  RRS breaks in {rrs_days:.4} days; SRS resists {srs_days:.1} days");

    // Simulated ranking per attack: every defense's crossing time, with
    // "never within the cap" treated as slower than any crossing.
    let crossing = |results: &[ScenarioResult], defense: DefenseKind, attack: &str| {
        results_where(results, |s| {
            s.defense == defense && s.attack.as_ref().is_some_and(|a| a.name == attack)
        })
        .first()
        .and_then(|r| r.detail.security.as_ref().and_then(|sec| sec.first_crossing_ns))
    };
    let mut consistent = true;
    for attack in &attacks {
        let rrs = crossing(&results, DefenseKind::Rrs { immediate_unswap: true }, &attack.name);
        let srs = crossing(&results, DefenseKind::Srs, &attack.name);
        let scale = crossing(&results, DefenseKind::ScaleSrs, &attack.name);
        let baseline = crossing(&results, DefenseKind::Baseline, &attack.name);
        // The paper's ordering: the baseline falls fastest; SRS and
        // Scale-SRS must never be broken faster than RRS — and for the
        // Juggernaut patterns RRS must actually fall while SRS/Scale-SRS
        // hold (RRS ≪ SRS ≤ Scale-SRS).
        let rrs_vs_srs = match (rrs, srs) {
            (Some(r), Some(s)) => r < s,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => true,
        };
        let srs_and_scale_hold = srs.is_none() && scale.is_none();
        let baseline_falls = baseline.is_some();
        let juggernaut_breaks_rrs = !attack.name.starts_with("juggernaut")
            || attack.name == "juggernaut-multibank"
            || rrs.is_some();
        let ok = rrs_vs_srs && srs_and_scale_hold && baseline_falls && juggernaut_breaks_rrs;
        consistent &= ok;
        println!(
            "  {:<22} baseline {} | rrs {} | srs {} | scale-srs {}  [{}]",
            attack.name,
            fmt_crossing(baseline),
            fmt_crossing(rrs),
            fmt_crossing(srs),
            fmt_crossing(scale),
            if ok { "consistent" } else { "INCONSISTENT" },
        );
    }
    println!(
        "\nSimulated ranking vs analytical model: {}",
        if consistent {
            "CONSISTENT (RRS \u{226a} SRS \u{2264} Scale-SRS)"
        } else {
            "INCONSISTENT"
        }
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"t_rh\": {},\n",
            "  \"smoke\": {},\n",
            "  \"analytical\": {{\"rrs_days\": {:.6}, \"srs_days\": {:.3}}},\n",
            "  \"ranking_consistent\": {},\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        t_rh, smoke, rrs_days, srs_days, consistent, cells_json
    );
    std::fs::write("BENCH_attack.json", json).expect("write BENCH_attack.json");
    println!("wrote BENCH_attack.json");

    assert!(consistent, "simulated defense ranking diverged from the analytical model");
}
