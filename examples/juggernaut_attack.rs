//! Reproduce the paper's headline security result: the Juggernaut attack
//! breaks Randomized Row-Swap (RRS) in hours, while Secure Row-Swap resists
//! for years — analytically and with Monte-Carlo validation.
//!
//! Run with `cargo run --release --example juggernaut_attack`.

use scale_srs::attack::{juggernaut, montecarlo, AttackParams};

fn fmt_days(days: f64) -> String {
    if !days.is_finite() {
        "practically never".to_string()
    } else if days >= 365.0 {
        format!("{:.1} years", days / 365.0)
    } else if days >= 1.0 {
        format!("{days:.1} days")
    } else {
        format!("{:.1} hours", days * 24.0)
    }
}

fn main() {
    println!("Juggernaut attack against row-swap defenses (swap rate 6)\n");
    println!("{:>8}  {:>18}  {:>18}", "TRH", "RRS time-to-break", "SRS time-to-break");
    for &t_rh in &[4800u64, 2400, 1200] {
        let rrs = juggernaut::time_to_break_rrs_days(t_rh, 6);
        let srs = juggernaut::time_to_break_srs_days(t_rh, 6);
        println!("{t_rh:>8}  {:>18}  {:>18}", fmt_days(rrs), fmt_days(srs));
    }

    // How the attack is tuned: sweep the number of biasing rounds.
    let params = AttackParams::rrs(4800, 6);
    let best = juggernaut::best_attack(&params).expect("attack is feasible");
    println!(
        "\nBest RRS attack at TRH 4800: {} unswap-swap rounds bias the aggressor to {:.0}",
        best.attack_rounds, best.biased_activations
    );
    println!(
        "activations, leaving only {} correct random guesses out of {} per window.",
        best.required_guesses, best.guesses_per_window
    );

    // Monte-Carlo validation of the analytical model.
    if let Some(mc) = montecarlo::simulate(&params, best.attack_rounds, 200_000, 0xA77ACC) {
        println!(
            "\nMonte-Carlo ({} windows): {} vs analytical {} (relative error {:.1}%)",
            mc.windows_simulated,
            fmt_days(mc.expected_time_days()),
            fmt_days(best.expected_time_days()),
            mc.relative_error() * 100.0
        );
    }
}
