//! Integration tests for the scenario-driven experiment engine: grids
//! enumerate deterministically, execute in parallel, and return results in
//! submission order regardless of per-job completion times.

use scale_srs::core::DefenseKind;
use scale_srs::sim::{Experiment, SystemConfig};
use scale_srs::trackers::TrackerKind;
use scale_srs::workloads::{all_workloads, NamedWorkload};

/// A deliberately small configuration so each grid cell simulates quickly.
fn tiny(defense: DefenseKind, t_rh: u64) -> SystemConfig {
    let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
    config.cores = 2;
    config.core.target_instructions = 4_000;
    config.trace_records_per_core = 1_500;
    config.dram.refresh_window_ns = 500_000;
    config.max_sim_ns = 3_000_000;
    config
}

fn grid_workloads() -> Vec<NamedWorkload> {
    all_workloads().into_iter().filter(|w| w.name == "gups" || w.name == "gcc").collect()
}

#[test]
fn two_by_two_grid_yields_four_ordered_results() {
    let experiment = Experiment::new()
        .with_defenses(vec![DefenseKind::Srs, DefenseKind::ScaleSrs])
        .with_workloads(grid_workloads())
        .with_config_fn(tiny)
        .with_threads(4);
    assert_eq!(experiment.job_count(), 4);

    let results = experiment.run();
    assert_eq!(results.len(), 4);
    // Results arrive in submission order: scenario i sits at position i.
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.scenario.index, i, "result {i} out of order");
    }
    // The grid enumerates defense-major, workload-minor.
    let expected: Vec<(DefenseKind, &str)> = [DefenseKind::Srs, DefenseKind::ScaleSrs]
        .into_iter()
        .flat_map(|kind| grid_workloads().into_iter().map(move |w| (kind, w.name)))
        .collect();
    let got: Vec<(DefenseKind, &str)> =
        results.iter().map(|r| (r.scenario.defense, r.scenario.workload.name)).collect();
    assert_eq!(got, expected);
    for r in &results {
        assert!(r.normalized() > 0.0 && r.normalized() <= 1.0);
        assert!(r.result.detail.instructions > 0);
    }
}

#[test]
fn grid_results_are_deterministic_across_runs() {
    let experiment = Experiment::new()
        .with_defenses(vec![DefenseKind::Srs, DefenseKind::ScaleSrs])
        .with_workloads(grid_workloads())
        .with_config_fn(tiny)
        .with_threads(4);
    let first = experiment.run();
    let second = experiment.run();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.scenario, b.scenario);
        assert!(
            (a.normalized() - b.normalized()).abs() < 1e-12,
            "{} on {}: {} vs {}",
            a.scenario.defense,
            a.scenario.workload.name,
            a.normalized(),
            b.normalized()
        );
        assert_eq!(a.result.detail.swaps, b.result.detail.swaps);
    }
}

#[test]
fn additional_axes_multiply_the_grid_and_reach_the_config() {
    let experiment = Experiment::new()
        .with_defenses(vec![DefenseKind::ScaleSrs])
        .with_workloads(grid_workloads())
        .with_thresholds(vec![1200, 2400])
        .with_seeds(vec![1, 2, 3])
        .with_trackers(vec![TrackerKind::MisraGries, TrackerKind::Hydra])
        .with_config_fn(tiny);
    // 1 defense x 2 trackers x 2 thresholds x 3 seeds x 2 workloads.
    assert_eq!(experiment.job_count(), 24);
    let scenarios = experiment.scenarios();
    assert_eq!(scenarios.len(), 24);
    let with_seed_three = scenarios.iter().filter(|s| s.seed == Some(3)).count();
    assert_eq!(with_seed_three, 8);
    let config = experiment.config_for(&scenarios[0]);
    assert_eq!(config.seed, 1);
    assert_eq!(config.tracker, TrackerKind::MisraGries);
    assert_eq!(config.t_rh, 1200);
}
