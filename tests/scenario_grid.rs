//! Integration tests for the scenario-driven experiment engine: grids
//! enumerate deterministically, execute in parallel, return results in
//! submission order regardless of per-job completion times, and
//! spec-driven (data) grids match builder-API (code) grids cell for cell.

use scale_srs::core::DefenseKind;
use scale_srs::sim::spec::{ConfigPatch, ExperimentSpec};
use scale_srs::sim::Experiment;
use scale_srs::trackers::TrackerKind;
use scale_srs::workloads::{all_workloads, NamedWorkload};

/// A deliberately small configuration so each grid cell simulates quickly.
fn tiny() -> ConfigPatch {
    ConfigPatch {
        cores: Some(2),
        target_instructions: Some(4_000),
        trace_records_per_core: Some(1_500),
        refresh_window_ns: Some(500_000),
        max_sim_ns: Some(3_000_000),
        ..ConfigPatch::default()
    }
}

fn grid_workloads() -> Vec<NamedWorkload> {
    all_workloads().into_iter().filter(|w| w.name == "gups" || w.name == "gcc").collect()
}

#[test]
fn two_by_two_grid_yields_four_ordered_results() {
    let experiment = Experiment::new()
        .with_defenses(vec![DefenseKind::Srs, DefenseKind::ScaleSrs])
        .with_workloads(grid_workloads())
        .with_patch(tiny())
        .with_threads(4);
    assert_eq!(experiment.job_count(), 4);

    let results = experiment.run();
    assert_eq!(results.len(), 4);
    // Results arrive in submission order: scenario i sits at position i.
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.scenario.index, i, "result {i} out of order");
    }
    // The grid enumerates defense-major, workload-minor.
    let expected: Vec<(DefenseKind, &str)> = [DefenseKind::Srs, DefenseKind::ScaleSrs]
        .into_iter()
        .flat_map(|kind| grid_workloads().into_iter().map(move |w| (kind, w.name)))
        .collect();
    let got: Vec<(DefenseKind, &str)> =
        results.iter().map(|r| (r.scenario.defense, r.scenario.workload.name)).collect();
    assert_eq!(got, expected);
    for r in &results {
        assert!(r.normalized() > 0.0 && r.normalized() <= 1.0);
        assert!(r.result.detail.instructions > 0);
    }
}

#[test]
fn grid_results_are_deterministic_across_runs() {
    let experiment = Experiment::new()
        .with_defenses(vec![DefenseKind::Srs, DefenseKind::ScaleSrs])
        .with_workloads(grid_workloads())
        .with_patch(tiny())
        .with_threads(4);
    let first = experiment.run();
    let second = experiment.run();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.scenario, b.scenario);
        assert!(
            (a.normalized() - b.normalized()).abs() < 1e-12,
            "{} on {}: {} vs {}",
            a.scenario.defense,
            a.scenario.workload.name,
            a.normalized(),
            b.normalized()
        );
        assert_eq!(a.result.detail.swaps, b.result.detail.swaps);
    }
}

#[test]
fn additional_axes_multiply_the_grid_and_reach_the_config() {
    let experiment = Experiment::new()
        .with_defenses(vec![DefenseKind::ScaleSrs])
        .with_workloads(grid_workloads())
        .with_thresholds(vec![1200, 2400])
        .with_seeds(vec![1, 2, 3])
        .with_trackers(vec![TrackerKind::MisraGries, TrackerKind::Hydra])
        .with_patch(tiny());
    // 1 defense x 2 trackers x 2 thresholds x 3 seeds x 2 workloads.
    assert_eq!(experiment.job_count(), 24);
    let scenarios = experiment.scenarios();
    assert_eq!(scenarios.len(), 24);
    let with_seed_three = scenarios.iter().filter(|s| s.seed == Some(3)).count();
    assert_eq!(with_seed_three, 8);
    let config = experiment.config_for(&scenarios[0]);
    assert_eq!(config.seed, 1);
    assert_eq!(config.tracker, TrackerKind::MisraGries);
    assert_eq!(config.t_rh, 1200);
}

#[test]
fn quickstart_spec_enumerates_the_builder_grid_and_matches_results() {
    // The builder-API grid examples/quickstart.rs declared in code before
    // the spec migration...
    let quick = ConfigPatch {
        cores: Some(2),
        target_instructions: Some(20_000),
        trace_records_per_core: Some(6_000),
        refresh_window_ns: Some(1_000_000),
        max_sim_ns: Some(10_000_000),
        ..ConfigPatch::default()
    };
    let builder = Experiment::new()
        .with_defenses(vec![DefenseKind::Srs, DefenseKind::ScaleSrs])
        .with_workloads(grid_workloads())
        .with_patch(quick)
        .with_threads(2);
    // ...and the same experiment as checked-in data (what `srs-cli run
    // specs/quickstart.json` executes).
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/quickstart.json");
    let spec = ExperimentSpec::parse(&std::fs::read_to_string(spec_path).unwrap()).unwrap();
    let from_spec = spec.to_experiment().unwrap().with_threads(2);

    // Identical scenario enumeration and identical per-cell configurations.
    assert_eq!(from_spec.scenarios(), builder.scenarios());
    for scenario in &builder.scenarios() {
        assert_eq!(from_spec.config_for(scenario), builder.config_for(scenario));
    }
    // Identical configurations should make identical results a certainty;
    // run both grids anyway and hold the data path to bit-for-bit parity.
    let code_driven = builder.run();
    let data_driven = from_spec.run();
    assert_eq!(code_driven, data_driven);
}

#[test]
fn every_checked_in_spec_resolves() {
    let specs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/specs");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(specs_dir).expect("specs/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let spec =
            ExperimentSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let experiment = spec.to_experiment().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(experiment.job_count() > 0, "{}: empty grid", path.display());
        seen += 1;
    }
    assert!(seen >= 8, "expected the checked-in spec set, found {seen}");
}
