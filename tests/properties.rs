//! Property-based tests (proptest) on the core data structures and models.

use proptest::prelude::*;

use scale_srs::core::rit::BankRit;
use scale_srs::core::{MitigationConfig, RowSwapDefense, ScaleSrs, SecureRowSwap};
use scale_srs::dram::{AddressMapper, DramConfig, PhysAddr};
use scale_srs::trackers::{AggressorTracker, MisraGriesConfig, MisraGriesTracker};
use scale_srs::workloads::{MemOp, Trace, TraceRecord};

proptest! {
    /// Decoding any line-aligned physical address and re-encoding it is the
    /// identity (the mapper is a bijection over the device's capacity).
    #[test]
    fn address_mapping_round_trips(raw in 0u64..(1 << 35)) {
        let config = DramConfig::default();
        let mapper = AddressMapper::new(config.clone());
        let addr = PhysAddr::new(raw).line_aligned(config.line_size_bytes);
        let decoded = mapper.decode(addr);
        let encoded = mapper.encode(&decoded).unwrap();
        prop_assert_eq!(mapper.decode(encoded), decoded);
    }

    /// The RIT's forward and reverse maps stay mutually consistent under any
    /// sequence of swap and unswap operations, and translation stays a
    /// permutation (no two rows ever resolve to the same location).
    #[test]
    fn rit_stays_a_permutation(ops in proptest::collection::vec((0u64..64, 0u64..64, prop::bool::ANY), 1..200)) {
        let mut rit = BankRit::new(256, 64);
        for (row, target, unswap) in ops {
            if unswap {
                rit.unswap(row, 0);
            } else {
                rit.swap_to(row, target, 0);
            }
            prop_assert!(rit.invariants_hold());
        }
        let mut seen = std::collections::HashSet::new();
        for row in 0u64..64 {
            prop_assert!(seen.insert(rit.translate(row)), "duplicate location for row {}", row);
        }
    }

    /// Mitigating a row in SRS reads the row's own home location only for
    /// the initial swap — never systematically on every re-swap the way
    /// RRS's unswap-swaps do. The only way the home can be read again is if
    /// a uniformly random swap partner happened to land on the home first
    /// (sending the row back there), which the attacker cannot control; so
    /// the structural bound is `home reads <= 1 + times the row was randomly
    /// swapped back home`. RRS by contrast reads the home about twice per
    /// trigger.
    #[test]
    fn srs_home_reads_are_bounded_by_random_returns(rows in proptest::collection::vec(0u64..32, 1..100)) {
        let mut defense = SecureRowSwap::new(MitigationConfig::paper_default(2400, 6));
        let mut home_reads: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut returned_home: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, &row) in rows.iter().enumerate() {
            for action in defense.on_mitigation_trigger(0, row, i as u64 * 1000) {
                if let scale_srs::core::MitigationAction::RowOperation { kind: scale_srs::core::RowOpKind::Swap, activations, .. } = action {
                    // The swap engine reports [from_location, to_location].
                    if activations.first() == Some(&row) {
                        *home_reads.entry(row).or_insert(0) += 1;
                    }
                    if activations.get(1) == Some(&row) {
                        *returned_home.entry(row).or_insert(0) += 1;
                    }
                }
            }
        }
        for (&row, &reads) in &home_reads {
            let returns = returned_home.get(&row).copied().unwrap_or(0);
            prop_assert!(
                reads <= 1 + returns,
                "home of row {} read {} times with only {} random returns home",
                row,
                reads,
                returns
            );
        }
    }

    /// The Misra-Gries tracker fires for any row stream in which one row
    /// receives at least TS consecutive activations.
    #[test]
    fn misra_gries_always_catches_a_burst(noise in proptest::collection::vec(0u64..10_000, 0..500), ts in 16u64..128) {
        let mut tracker = MisraGriesTracker::new(MisraGriesConfig::for_threshold(ts, 1_360_000, 1));
        for row in noise {
            tracker.record_activation(0, row);
        }
        let mut fired = false;
        for _ in 0..ts {
            fired |= tracker.record_activation(0, 424_242).mitigate;
        }
        prop_assert!(fired);
    }

    /// Trace binary serialization round-trips arbitrary record sequences.
    #[test]
    fn trace_serialization_round_trips(records in proptest::collection::vec((0u32..1000, prop::bool::ANY, 0u64..(1 << 40)), 0..200)) {
        let trace = Trace::new(
            "prop",
            records
                .into_iter()
                .map(|(gap, write, addr)| TraceRecord {
                    nonmem_insts: gap,
                    op: if write { MemOp::Write } else { MemOp::Read },
                    addr,
                })
                .collect(),
        );
        let back = Trace::from_bytes(trace.to_bytes()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// After any sequence of swaps and unswaps, `translate()` remains a
    /// permutation whose inverse is `occupant()`: following a row to its
    /// location and asking who lives there always leads straight back
    /// (`occupant(translate(r)) == r` and `translate(occupant(r)) == r` for
    /// every row), and no two rows ever share a location. This is the
    /// "self-inverse pair" invariant the defenses rely on to undo any swap
    /// history; note that `translate` composed with *itself* is only an
    /// involution for non-chained swaps (a re-swap of an already-remapped
    /// row legitimately creates a 3-cycle through the displaced rows).
    #[test]
    fn translate_is_a_self_inverse_permutation_with_occupant(
        ops in proptest::collection::vec((0u64..48, 0u64..48, prop::bool::ANY), 1..150),
    ) {
        let mut rit = BankRit::new(256, 64);
        for (row, target, unswap) in ops {
            if unswap {
                rit.unswap(row, 0);
            } else {
                rit.swap_to(row, target, 0);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for row in 0u64..48 {
            let location = rit.translate(row);
            prop_assert!(seen.insert(location), "rows collide at location {}", location);
            prop_assert_eq!(rit.occupant(location), row);
            prop_assert_eq!(rit.translate(rit.occupant(row)), row);
        }
    }

    /// Scale-SRS translation never maps a row outside the bank, whatever the
    /// trigger sequence and threshold.
    #[test]
    fn scale_srs_translation_stays_in_range(rows in proptest::collection::vec(0u64..4096, 1..80), t_rh in prop::sample::select(vec![1200u64, 2400, 4800])) {
        let config = MitigationConfig::paper_default(t_rh, 3);
        let rows_per_bank = config.rows_per_bank;
        let mut defense = ScaleSrs::new(config);
        for (i, &row) in rows.iter().enumerate() {
            defense.on_mitigation_trigger(i % 4, row, i as u64);
        }
        for &row in &rows {
            for bank in 0..4 {
                prop_assert!(defense.translate(bank, row) < rows_per_bank);
            }
        }
    }
}

proptest! {
    /// Arbitrary trace records — wild out-of-range addresses, zero-length
    /// streams, duplicate rows, any read/write mix — never panic the
    /// engine. Structurally unroutable accesses surface as structured
    /// [`scale_srs::sim::SimError`]s instead, and the run still terminates.
    #[test]
    fn arbitrary_trace_records_never_panic_the_engine(
        raw in proptest::collection::vec((0u32..64, prop::bool::ANY, 0u64..u64::MAX), 0..120),
        dup in prop::bool::ANY,
    ) {
        use scale_srs::sim::{System, SystemConfig};
        use scale_srs::workloads::Trace;
        let mut records: Vec<TraceRecord> = raw
            .into_iter()
            .map(|(nonmem_insts, write, addr)| TraceRecord {
                nonmem_insts,
                op: if write { MemOp::Write } else { MemOp::Read },
                addr,
            })
            .collect();
        if dup {
            // Duplicate-row streams: every record aliased onto the first.
            if let Some(first) = records.first().copied() {
                let half = records.len() / 2;
                for record in &mut records[..half] {
                    record.addr = first.addr;
                }
            }
        }
        let mut config = SystemConfig::scaled_for_speed(
            scale_srs::core::DefenseKind::ScaleSrs,
            1200,
        );
        config.cores = 1;
        config.core.target_instructions = 2_000;
        config.max_sim_ns = 500_000;
        let result = System::new(config, Trace::new("fuzz", records)).run();
        // The run terminated (no panic, no hang) and produced a coherent
        // result whatever the input looked like.
        prop_assert!(result.elapsed_ns > 0);
    }

    /// A zero-length trace completes immediately with zero activity, and
    /// the engine records no errors for it.
    #[test]
    fn empty_traces_complete_without_errors(seed in 0u64..1000) {
        use scale_srs::sim::{System, SystemConfig};
        use scale_srs::workloads::Trace;
        let mut config = SystemConfig::scaled_for_speed(
            scale_srs::core::DefenseKind::ScaleSrs,
            1200,
        );
        config.cores = 2;
        config.seed = seed;
        config.max_sim_ns = 200_000;
        let system = System::new(config, Trace::new("empty", Vec::new()));
        prop_assert!(system.sim_errors().is_empty());
        let result = system.run();
        prop_assert_eq!(result.controller.reads, 0);
        prop_assert_eq!(result.controller.writes, 0);
    }
}
