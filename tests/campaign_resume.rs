//! Campaign-engine integration: resume skip-lists, failure isolation, and
//! unit-atomic sharding must all reproduce an uninterrupted run bit for
//! bit.

use scale_srs::sim::campaign::{
    execution_units, plan_shards, Campaign, CampaignReport, CampaignSink, CellFailure,
};
use scale_srs::sim::sink::{ProgressSink, ResultSink};
use scale_srs::sim::spec::ExperimentSpec;
use scale_srs::sim::{RetryPolicy, Scenario, ScenarioResult, ToJson};

/// Six cells, two shared-prefix units (one per workload), fast enough for
/// CI: three defenses sharing one benign trunk per workload.
fn tiny_spec() -> ExperimentSpec {
    ExperimentSpec::parse(
        r#"{
            "name": "campaign_tiny",
            "patch": {"cores": 1, "target_instructions": 2000,
                      "trace_records_per_core": 1000, "max_sim_ns": 2000000},
            "defenses": ["baseline", "srs", "scale-srs"],
            "workloads": ["gups", "gcc"],
            "threads": 2
        }"#,
    )
    .expect("tiny spec parses")
}

fn instant_retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 3, backoff_ms: 0 }
}

#[derive(Default)]
struct Collect {
    started: Vec<usize>,
    results: Vec<ScenarioResult>,
    failed: Vec<CellFailure>,
    report: Option<CampaignReport>,
}

impl CampaignSink for Collect {
    fn on_scenario_start(&mut self, scenario: &Scenario) {
        self.started.push(scenario.index);
    }

    fn on_result(&mut self, result: &ScenarioResult) {
        self.results.push(result.clone());
    }

    fn on_cell_failed(&mut self, failure: &CellFailure) {
        self.failed.push(failure.clone());
    }

    fn on_finish(&mut self, report: &CampaignReport) {
        self.report = Some(report.clone());
    }
}

fn record_lines(results: &[ScenarioResult]) -> Vec<String> {
    results.iter().map(|r| r.to_json().to_compact()).collect()
}

#[test]
fn resumed_campaign_skips_completed_cells_and_matches_the_full_run_bitwise() {
    let experiment = tiny_spec().to_experiment().unwrap();
    let reference = experiment.run();
    let total = reference.len();
    assert_eq!(total, 6);

    let done = vec![0, 2, 3];
    let campaign = Campaign::new(experiment).with_completed(done.clone());
    assert_eq!(campaign.planned(), vec![1, 4, 5]);
    let mut sink = Collect::default();
    let report = campaign.run(&mut sink);

    // Skipped cells produce no events at all — not even a start.
    for skipped in &done {
        assert!(!sink.started.contains(skipped), "cell {skipped} started despite skip-list");
    }
    let got: Vec<usize> = sink.results.iter().map(|r| r.scenario.index).collect();
    assert_eq!(got, vec![1, 4, 5], "outcomes arrive in ascending cell order");
    // Restricting a shared-prefix unit to a subset of its members must not
    // change any member's bits.
    for result in &sink.results {
        let index = result.scenario.index;
        assert_eq!(
            result.to_json().to_compact(),
            reference[index].to_json().to_compact(),
            "cell {index} differs from the uninterrupted run"
        );
    }
    assert_eq!(report.total_cells, total);
    assert_eq!(report.planned, 3);
    assert_eq!(report.skipped, 3);
    assert_eq!(report.completed, 3);
    assert!(report.failed.is_empty());
}

#[test]
fn progress_under_resume_counts_from_the_offset_and_etas_remaining_cells() {
    let experiment = tiny_spec().to_experiment().unwrap();
    let done = vec![0, 1, 2, 3];
    let campaign = Campaign::new(experiment).with_completed(done.clone());
    let remaining = campaign.planned().len();
    assert_eq!(remaining, 2);

    struct Progress(ProgressSink<Vec<u8>>);
    impl CampaignSink for Progress {
        fn on_result(&mut self, result: &ScenarioResult) {
            self.0.on_result(result);
        }
        fn on_finish(&mut self, report: &CampaignReport) {
            self.0.on_finish(report.completed);
        }
    }
    let mut sink = Progress(ProgressSink::new(remaining, Vec::new()).with_offset(done.len()));
    campaign.run(&mut sink);
    let Progress(progress) = sink;
    assert_eq!(progress.finished(), remaining);
    let text = String::from_utf8(progress.into_inner()).unwrap();
    // The display counts from the resume offset: 5/6 then 6/6, and the
    // final ETA extrapolates from the 2 remaining cells only (0 at the
    // end), never from the 6-cell grid.
    assert!(text.contains("[5/6]"), "first resumed line counts from offset: {text}");
    assert!(text.contains("[6/6]"), "last line reaches the full grid: {text}");
    assert!(text.contains("eta=0.0s"), "ETA drains to zero over remaining cells: {text}");
}

#[test]
fn injected_faults_are_retried_and_persistent_failures_degrade_not_abort() {
    use scale_srs::sim::FaultInjection;
    let experiment = tiny_spec().to_experiment().unwrap();
    let reference = experiment.run();

    // One transient failure: the unit is retried and every bit matches.
    let campaign = Campaign::new(experiment.clone())
        .with_retry(instant_retry())
        .with_fault(Some(FaultInjection { cell: 1, failures: 1 }));
    let mut sink = Collect::default();
    let report = campaign.run(&mut sink);
    assert!(report.failed.is_empty(), "one transient fault must be absorbed by retry");
    assert_eq!(record_lines(&sink.results), record_lines(&reference));

    // A persistent failure exhausts the budget: the faulty cell's whole
    // execution unit is reported failed, everything else still completes.
    let campaign = Campaign::new(experiment.clone())
        .with_retry(instant_retry())
        .with_fault(Some(FaultInjection { cell: 1, failures: 99 }));
    let mut sink = Collect::default();
    let report = campaign.run(&mut sink);
    let units = execution_units(&experiment);
    let faulty_unit = units.iter().find(|u| u.contains(&1)).expect("cell 1 has a unit");
    let failed: Vec<usize> = report.failed.iter().map(|f| f.index).collect();
    assert_eq!(&failed, faulty_unit, "exactly the faulty unit fails");
    for failure in &report.failed {
        assert_eq!(failure.attempts, 3, "the retry budget was spent");
        assert!(failure.error.contains("injected campaign fault"), "error: {}", failure.error);
    }
    assert_eq!(report.completed + report.failed.len(), report.planned);
    // Surviving cells are bit-identical to the uninterrupted run.
    for result in &sink.results {
        let index = result.scenario.index;
        assert_eq!(result.to_json().to_compact(), reference[index].to_json().to_compact());
    }

    // Resuming with the survivors marked done re-runs only the failed unit
    // and reproduces the reference bits.
    let survivors: Vec<usize> = sink.results.iter().map(|r| r.scenario.index).collect();
    let campaign = Campaign::new(experiment).with_retry(instant_retry()).with_completed(survivors);
    let mut resumed = Collect::default();
    let report = campaign.run(&mut resumed);
    assert!(report.failed.is_empty());
    let retried: Vec<usize> = resumed.results.iter().map(|r| r.scenario.index).collect();
    assert_eq!(&retried, faulty_unit);
    for result in &resumed.results {
        let index = result.scenario.index;
        assert_eq!(result.to_json().to_compact(), reference[index].to_json().to_compact());
    }
}

#[test]
fn shards_partition_the_grid_without_splitting_units_and_rerun_bitwise() {
    let spec = tiny_spec();
    let experiment = spec.to_experiment().unwrap();
    let reference = experiment.run();
    let units = execution_units(&experiment);
    assert_eq!(units.len(), 2, "three defenses × two workloads share two trunks");

    let shards = plan_shards(&spec, 2).unwrap();
    assert_eq!(shards, plan_shards(&spec, 2).unwrap(), "planning is deterministic");
    assert_eq!(shards.len(), 2);
    // Disjoint cover of the grid, unit-atomic.
    let mut covered: Vec<usize> = shards.iter().flat_map(|s| s.cells.clone()).collect();
    covered.sort_unstable();
    assert_eq!(covered, (0..reference.len()).collect::<Vec<_>>());
    for unit in &units {
        assert!(
            shards.iter().any(|s| unit.iter().all(|c| s.cells.contains(c))),
            "unit {unit:?} split across shards"
        );
    }
    // The shard round-trips through its on-disk JSON form.
    let text = shards[0].to_json().to_pretty();
    let json = scale_srs::sim::Json::parse(&text).unwrap();
    let reparsed = scale_srs::sim::campaign::ShardManifest::from_json("shard0", &json).unwrap();
    assert_eq!(reparsed, shards[0]);

    // Running each shard independently reproduces the reference bits.
    for shard in &shards {
        let campaign = Campaign::new(spec.to_experiment().unwrap()).with_cells(shard.cells.clone());
        let mut sink = Collect::default();
        let report = campaign.run(&mut sink);
        assert_eq!(report.completed, shard.cells.len());
        for result in &sink.results {
            let index = result.scenario.index;
            assert_eq!(
                result.to_json().to_compact(),
                reference[index].to_json().to_compact(),
                "shard {} cell {index} differs from the unsharded run",
                shard.shard_index
            );
        }
    }
}
