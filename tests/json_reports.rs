//! Schema validation of the committed benchmark reports, parsed with the
//! workspace's own JSON codec (`srs_sim::json`) — previously CI checked
//! these artifacts with ad-hoc shell (`python3 -m json.tool`).

use scale_srs::sim::Json;

fn load(name: &str) -> Json {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn bench_throughput_report_matches_schema() {
    let doc = load("BENCH_throughput.json");
    for section in ["fixed_step", "event_driven"] {
        let m = doc.get(section).unwrap_or_else(|| panic!("missing section {section}"));
        for key in ["wall_seconds", "simulated_ns_per_sec", "grid_runs_per_sec"] {
            assert!(
                m.get(key).and_then(Json::as_f64).is_some_and(|v| v > 0.0),
                "{section}.{key} must be a positive number"
            );
        }
        for key in ["simulated_ns", "grid_runs"] {
            assert!(
                m.get(key).and_then(Json::as_u64).is_some_and(|v| v > 0),
                "{section}.{key} must be a positive integer"
            );
        }
    }
    assert!(doc.get("event_vs_fixed_speedup").and_then(Json::as_f64).is_some());
    assert!(doc.get("smoke").and_then(Json::as_bool).is_some());
    // The saturated-cells section: drain-mode A/B plus (in full mode) the
    // recorded PR 5 baseline the batched pipeline is compared against.
    let saturated = doc.get("saturated").expect("saturated section");
    for mode in ["per_event", "batched"] {
        let m = saturated.get(mode).unwrap_or_else(|| panic!("missing saturated.{mode}"));
        assert!(
            m.get("wall_seconds").and_then(Json::as_f64).is_some_and(|v| v > 0.0),
            "saturated.{mode}.wall_seconds must be a positive number"
        );
        assert!(
            m.get("simulated_ns").and_then(Json::as_u64).is_some_and(|v| v > 0),
            "saturated.{mode}.simulated_ns must be a positive integer"
        );
    }
    assert!(saturated.get("batched_vs_per_event_speedup").and_then(Json::as_f64).is_some());
    // The per-subsystem wall-time attribution: a total breakdown plus one
    // per saturated cell, every bucket a nanosecond count no larger than
    // the instrumented wall time it partitions.
    let attribution = doc.get("attribution").expect("attribution section");
    let buckets =
        ["controller_schedule_ns", "tracker_ns", "defense_ns", "rit_ns", "security_ns", "other_ns"];
    let check_breakdown = |what: &str, m: &Json| {
        let wall = m
            .get("wall_ns")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{what}.wall_ns must be an integer"));
        let mut sum = 0;
        for key in buckets {
            let v = m
                .get(key)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{what}.{key} must be an integer"));
            sum += v;
        }
        assert!(sum <= wall, "{what}: exclusive buckets ({sum} ns) exceed wall ({wall} ns)");
    };
    check_breakdown("attribution.total", attribution.get("total").expect("attribution total"));
    let cells = attribution.get("cells").and_then(Json::as_array).expect("attribution cells");
    assert!(!cells.is_empty(), "attribution carries at least one saturated cell");
    for cell in cells {
        let label = cell.get("label").and_then(Json::as_str).expect("cell label");
        check_breakdown(label, cell.get("breakdown").expect("cell breakdown"));
    }
    // The committed artifact records the full-grid run, which carries the
    // pre-optimization baseline section for the perf trajectory.
    if doc.get("smoke").and_then(Json::as_bool) == Some(false) {
        let baseline = doc.get("recorded_pre_pr_baseline").expect("recorded baseline section");
        assert!(baseline.get("wall_seconds").and_then(Json::as_f64).is_some());
        assert!(doc.get("event_vs_recorded_baseline_speedup").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn bench_attack_report_matches_schema() {
    let doc = load("BENCH_attack.json");
    assert!(doc.get("t_rh").and_then(Json::as_u64).is_some_and(|v| v > 0));
    assert_eq!(
        doc.get("ranking_consistent").and_then(Json::as_bool),
        Some(true),
        "the committed report must record a model-consistent ranking"
    );
    let analytical = doc.get("analytical").expect("analytical section");
    assert!(analytical.get("rrs_days").and_then(Json::as_f64).is_some());
    assert!(analytical.get("srs_days").and_then(Json::as_f64).is_some());
    let cells = doc.get("cells").and_then(Json::as_array).expect("cells array");
    assert!(!cells.is_empty(), "report carries at least one attack x defense cell");
    for cell in cells {
        for key in ["attack", "defense"] {
            assert!(cell.get(key).and_then(Json::as_str).is_some(), "cell.{key}");
        }
        for key in ["max_victim_pressure", "latent_on_hottest_row", "attacker_reads"] {
            assert!(cell.get(key).and_then(Json::as_u64).is_some(), "cell.{key}");
        }
        assert!(cell.get("normalized_performance").and_then(Json::as_f64).is_some());
        // Either null (the defense held within the cap) or a crossing time.
        let crossing = cell.get("first_crossing_ns").expect("cell.first_crossing_ns");
        assert!(crossing.is_null() || crossing.as_u64().is_some());
        // The closest-approach telemetry: how near the attacker came to TRH
        // (ratio >= 1.0 exactly when the cell crossed) and when.
        let ratio = cell
            .get("closest_approach_ratio")
            .and_then(Json::as_f64)
            .expect("cell.closest_approach_ratio");
        assert!(ratio >= 0.0, "closest_approach_ratio must be non-negative");
        assert_eq!(
            ratio >= 1.0,
            !crossing.is_null(),
            "ratio >= 1.0 must coincide with a recorded crossing"
        );
        let at = cell.get("closest_approach_ns").expect("cell.closest_approach_ns");
        assert!(at.is_null() || at.as_u64().is_some());
    }

    // The adaptive-search section: the best attacker found per defense,
    // compared against the shipped library scored through the identical
    // warm-fork path. On the undefended baseline the search seeds from the
    // shipped library, so the champion can never be weaker.
    let worst = doc.get("worst_case").and_then(Json::as_array).expect("worst_case array");
    assert!(!worst.is_empty(), "worst_case carries at least one defense entry");
    let mut saw_baseline = false;
    for entry in worst {
        let defense = entry.get("defense").and_then(Json::as_str).expect("entry.defense");
        assert!(entry.get("t_rh").and_then(Json::as_u64).is_some());
        for key in ["generations", "population"] {
            assert!(entry.get(key).and_then(Json::as_u64).is_some_and(|v| v > 0), "entry.{key}");
        }
        for side in ["found", "shipped_best"] {
            let attacker = entry.get(side).unwrap_or_else(|| panic!("missing {side}"));
            assert!(attacker.get("name").and_then(Json::as_str).is_some(), "{side}.name");
            assert!(
                attacker.get("pressure_ratio").and_then(Json::as_f64).is_some(),
                "{side}.pressure_ratio"
            );
            let crossing = attacker.get("first_crossing_ns").expect("first_crossing_ns");
            assert!(crossing.is_null() || crossing.as_u64().is_some());
        }
        let not_weaker = entry.get("found_not_weaker").and_then(Json::as_bool).expect("bool");
        if defense == "baseline" {
            saw_baseline = true;
            assert!(not_weaker, "the committed report must not regress below the library");
            assert!(
                entry
                    .get("found")
                    .and_then(|f| f.get("first_crossing_ns"))
                    .is_some_and(|c| !c.is_null()),
                "the baseline must fall to the found attacker"
            );
        }
    }
    assert!(saw_baseline, "worst_case must cover the undefended baseline");
}
