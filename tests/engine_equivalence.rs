//! The event-driven time-skip engine must be a pure optimization: on every
//! cell of a scenario grid it has to produce **bit-identical** results to
//! the reference fixed-step engine it replaced — same IPC, same activation
//! counts, same swaps, same maximum per-row activation pressure.
//!
//! The grid deliberately crosses the behaviours with distinct event
//! sources: the baseline (pure demand traffic), RRS (swap maintenance and
//! bulk unswaps), SRS/Scale-SRS (timed lazy place-back, LLC pinning), both
//! trackers (Hydra adds counter-table maintenance ops), and both a hot-row
//! and a hammer workload.

use scale_srs::attack::engine::{AttackPattern, AttackSpec};
use scale_srs::core::DefenseKind;
use scale_srs::sim::{SimResult, System, SystemConfig};
use scale_srs::trackers::TrackerKind;
use scale_srs::workloads::{hammer_trace, AccessPattern, Trace, WorkloadSpec};

fn grid_config(defense: DefenseKind, tracker: TrackerKind, t_rh: u64) -> SystemConfig {
    let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
    config.tracker = tracker;
    config.cores = 2;
    config.core.target_instructions = 5_000;
    config.trace_records_per_core = 2_000;
    config.dram.refresh_window_ns = 400_000;
    config.max_sim_ns = 3_000_000;
    config
}

fn hot_trace(records: usize) -> Trace {
    WorkloadSpec {
        name: "equiv-hot".to_string(),
        footprint_bytes: 1 << 24,
        base_addr: 0,
        read_fraction: 0.7,
        mean_gap: 2,
        pattern: AccessPattern::HotRows { hot_rows: 2, hot_fraction: 0.6 },
    }
    .generate(records, 11)
}

fn assert_identical(cell: &str, fixed: &SimResult, event: &SimResult) {
    assert_eq!(fixed.elapsed_ns, event.elapsed_ns, "{cell}: elapsed_ns diverged");
    assert_eq!(fixed.per_core_ipc, event.per_core_ipc, "{cell}: per-core IPC diverged");
    assert_eq!(fixed.instructions, event.instructions, "{cell}: instructions diverged");
    assert_eq!(fixed.controller, event.controller, "{cell}: controller stats diverged");
    assert_eq!(fixed.swaps, event.swaps, "{cell}: swap count diverged");
    assert_eq!(fixed.rows_pinned, event.rows_pinned, "{cell}: pinned rows diverged");
    assert_eq!(fixed.pinned_hits, event.pinned_hits, "{cell}: pinned hits diverged");
    assert_eq!(
        fixed.max_row_activations_in_window, event.max_row_activations_in_window,
        "{cell}: max row activations diverged"
    );
}

#[test]
fn event_driven_engine_is_bit_identical_on_a_scenario_grid() {
    let defenses = [
        DefenseKind::Baseline,
        DefenseKind::Rrs { immediate_unswap: true },
        DefenseKind::Rrs { immediate_unswap: false },
        DefenseKind::Srs,
        DefenseKind::ScaleSrs,
    ];
    let trackers = [TrackerKind::MisraGries, TrackerKind::Hydra];
    type TraceMaker = fn() -> Trace;
    let workloads: [(&str, TraceMaker); 2] = [
        ("hot", || hot_trace(2_000)),
        ("hammer", || hammer_trace("equiv-hammer", 0x10000, 2_000, 1 << 26, 5).into_trace()),
    ];
    for defense in defenses {
        for tracker in trackers {
            for (wname, make_trace) in workloads {
                let cell = format!("{defense}/{tracker:?}/{wname}");
                let config = grid_config(defense, tracker, 1200);
                let fixed = System::new(config.clone(), make_trace()).run_fixed_step();
                let event = System::new(config, make_trace()).run();
                assert_identical(&cell, &fixed, &event);
            }
        }
    }
}

#[test]
fn event_driven_engine_matches_under_closed_loop_attack() {
    // Attacker cores participate in the event engine's `next_ready_ns`
    // protocol; a run with reactive attackers must still be bit-identical
    // to the fixed-step reference — including the security report and the
    // early stop at the first TRH crossing. RRS crosses (stop path);
    // SRS runs to the time cap (non-crossing path).
    for defense in [DefenseKind::Rrs { immediate_unswap: true }, DefenseKind::Srs] {
        let mut config = grid_config(defense, TrackerKind::MisraGries, 300);
        config.cores = 1;
        config.core.target_instructions = u64::MAX / 2;
        config.dram.refresh_window_ns = 8_000_000;
        config.max_sim_ns = 2_500_000;
        config.attack = Some(AttackSpec::new(
            "equiv-juggernaut",
            AttackPattern::Juggernaut { banks: 1, aggressor: 96, bias_rounds: u64::MAX },
        ));
        let cell = format!("attacked/{defense}");
        let fixed = System::new(config.clone(), hot_trace(1_000)).run_fixed_step();
        let event = System::new(config, hot_trace(1_000)).run();
        assert_identical(&cell, &fixed, &event);
        assert_eq!(fixed.security, event.security, "{cell}: security report diverged");
        let security = event.security.expect("attacked run carries a security report");
        assert!(security.attacker_reads > 0, "{cell}: attacker must have issued work");
        if defense == (DefenseKind::Rrs { immediate_unswap: true }) {
            assert!(security.trh_crossed, "{cell}: RRS must be broken in-window");
            assert!(event.elapsed_ns < 2_500_000, "{cell}: crossing must stop the run early");
        } else {
            assert!(!security.trh_crossed, "{cell}: SRS must hold to the time cap");
        }
    }
}

#[test]
fn batched_drain_is_bit_identical_to_per_event_on_a_scenario_grid() {
    // The batched activation drain (one sink call per bank visit) against
    // the per-event fallback (one virtual call per activation): a pure
    // dispatch optimization, so every cell must match bit for bit.
    let defenses = [
        DefenseKind::Baseline,
        DefenseKind::Rrs { immediate_unswap: true },
        DefenseKind::Srs,
        DefenseKind::ScaleSrs,
    ];
    let trackers = [TrackerKind::MisraGries, TrackerKind::Hydra];
    type TraceMaker = fn() -> Trace;
    let workloads: [(&str, TraceMaker); 2] = [
        ("hot", || hot_trace(2_000)),
        ("hammer", || hammer_trace("equiv-hammer", 0x10000, 2_000, 1 << 26, 5).into_trace()),
    ];
    for defense in defenses {
        for tracker in trackers {
            for (wname, make_trace) in workloads {
                let cell = format!("{defense}/{tracker:?}/{wname}/drain");
                let config = grid_config(defense, tracker, 1200);
                let batched = System::new(config.clone(), make_trace()).run();
                let mut system = System::new(config, make_trace());
                system.set_per_event_drain(true);
                assert_identical(&cell, &system.run(), &batched);
            }
        }
    }
}

#[test]
fn batched_drain_matches_per_event_under_closed_loop_attack() {
    // Attacked cells route every activation through the security tracker
    // and the reactive attacker feedback loop — the batch path must hand
    // both the identical event stream, security report included.
    let mut config = grid_config(DefenseKind::Srs, TrackerKind::MisraGries, 300);
    config.cores = 1;
    config.core.target_instructions = u64::MAX / 2;
    config.dram.refresh_window_ns = 8_000_000;
    config.max_sim_ns = 2_500_000;
    config.attack = Some(AttackSpec::new(
        "equiv-juggernaut",
        AttackPattern::Juggernaut { banks: 1, aggressor: 96, bias_rounds: u64::MAX },
    ));
    let batched = System::new(config.clone(), hot_trace(1_000)).run();
    let mut system = System::new(config, hot_trace(1_000));
    system.set_per_event_drain(true);
    let per_event = system.run();
    assert_identical("attacked/drain", &per_event, &batched);
    assert_eq!(per_event.security, batched.security, "attacked/drain: security report diverged");
}

#[test]
fn batched_drain_preserves_sink_event_order() {
    // Controller-level ordering gate: a recording sink must observe the
    // same activations and completions in the same order whether the
    // controller delivers them per event or per bank-visit batch. Demand
    // traffic across several banks plus a maintenance op (which drains
    // through the same batch path) cover both event sources.
    use scale_srs::dram::{
        AccessKind, BankId, EventCollector, MaintenanceKind, MaintenanceOp, MemRequest,
        MemoryController, PhysAddr,
    };

    let dram = grid_config(DefenseKind::Baseline, TrackerKind::MisraGries, 1200).dram;
    let run = |batched: bool| {
        let mut controller = MemoryController::new(dram.clone());
        controller.set_batched_drain(batched);
        let mut collector = EventCollector::new();
        let mut addr = 0u64;
        for tick in 0..4_000u64 {
            let now = tick * 25;
            if tick.is_multiple_of(3) {
                // A rotating address stream that lands on many banks and
                // alternates rows within each, forcing activations.
                addr = addr.wrapping_add(0x1_0040).wrapping_mul(0x9E37) % (1 << 30);
                let kind =
                    if tick.is_multiple_of(5) { AccessKind::Write } else { AccessKind::Read };
                let _ = controller.enqueue(MemRequest::new(PhysAddr::new(addr), kind, 0, now));
            }
            if tick == 1_000 {
                let op = MaintenanceOp::new(BankId::new(0), 500, vec![7, 9], MaintenanceKind::Swap);
                let _ = controller.enqueue_maintenance(op);
            }
            controller.tick_into(now, &mut collector);
        }
        collector
    };
    let per_event = run(false);
    let batched = run(true);
    assert!(!batched.activations.is_empty(), "stream must carry activations");
    assert!(!batched.completions.is_empty(), "stream must carry completions");
    assert!(
        batched.activations.iter().any(|a| a.maintenance),
        "stream must carry maintenance activations"
    );
    assert_eq!(per_event.activations, batched.activations, "activation order diverged");
    assert_eq!(per_event.completions, batched.completions, "completion order diverged");
}

#[test]
fn event_driven_engine_matches_at_the_simulated_time_cap() {
    // A run that hits max_sim_ns (instead of finishing its instruction
    // target) must report the same final clock under both engines.
    let mut config = grid_config(DefenseKind::ScaleSrs, TrackerKind::MisraGries, 1200);
    config.core.target_instructions = u64::MAX / 2;
    config.max_sim_ns = 1_000_010; // deliberately off the 25 ns grid
    let fixed = System::new(config.clone(), hot_trace(1_500)).run_fixed_step();
    let event = System::new(config, hot_trace(1_500)).run();
    assert_identical("time-capped", &fixed, &event);
    assert!(fixed.elapsed_ns >= 1_000_010);
}

#[test]
fn integrity_report_is_bit_identical_across_engines_and_drain_modes() {
    // The end-to-end fault model (bit flips, ECC classification, scrub
    // cadence) is driven entirely by simulated time and seeded RNG streams,
    // so the time-skip engine, the fixed-step oracle, and both activation
    // drain modes must produce byte-identical integrity reports.
    use scale_srs::dram::EccKind;
    let mut config =
        grid_config(DefenseKind::Rrs { immediate_unswap: true }, TrackerKind::MisraGries, 300);
    config.cores = 1;
    config.core.target_instructions = u64::MAX / 2;
    config.dram.refresh_window_ns = 8_000_000;
    config.max_sim_ns = 2_500_000;
    let mut attack = AttackSpec::new(
        "equiv-juggernaut",
        AttackPattern::Juggernaut { banks: 1, aggressor: 96, bias_rounds: u64::MAX },
    );
    // Run through the crossing so damage accumulates and scrubs elapse.
    attack.stop_at_first_crossing = false;
    config.attack = Some(attack);
    config.faults.enabled = true;
    config.faults.ecc = EccKind::Secded;
    config.faults.scrub_interval_ns = 300_000;

    let fixed = System::new(config.clone(), hot_trace(1_000)).run_fixed_step();
    let event = System::new(config.clone(), hot_trace(1_000)).run();
    assert_identical("faults", &fixed, &event);
    assert_eq!(fixed.security, event.security, "faults: security report diverged");
    assert_eq!(fixed.integrity, event.integrity, "faults: integrity report diverged");
    let report = event.integrity.as_ref().expect("fault-model run carries an integrity report");
    assert!(report.bit_flips_injected > 0, "an undefended-in-time crossing must flip bits");

    let mut per_event = System::new(config, hot_trace(1_000));
    per_event.set_per_event_drain(true);
    let per_event = per_event.run();
    assert_eq!(per_event.integrity, event.integrity, "faults: drain modes diverged");
}
