//! Cross-crate integration tests: the full pipeline from workload generation
//! through the simulator to normalized performance, and the interplay
//! between the security models and the defenses.

use scale_srs::core::{DefenseKind, MitigationConfig, RowSwapDefense};
use scale_srs::sim::{run_normalized, System, SystemConfig};
use scale_srs::workloads::{all_workloads, hammer_trace, NamedWorkload};

fn tiny_config(defense: DefenseKind, t_rh: u64) -> SystemConfig {
    let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
    config.cores = 2;
    config.core.target_instructions = 5_000;
    config.trace_records_per_core = 1_500;
    config.dram.refresh_window_ns = 500_000;
    config.max_sim_ns = 4_000_000;
    config
}

fn workload(name: &str) -> NamedWorkload {
    all_workloads().into_iter().find(|w| w.name == name).expect("workload exists")
}

#[test]
fn every_defense_completes_a_simulation_run() {
    let kinds = [
        DefenseKind::Baseline,
        DefenseKind::Rrs { immediate_unswap: true },
        DefenseKind::Rrs { immediate_unswap: false },
        DefenseKind::Srs,
        DefenseKind::ScaleSrs,
    ];
    for kind in kinds {
        let config = tiny_config(kind, 1200);
        let trace = workload("gcc").spec().generate(config.trace_records_per_core, 1);
        let result = System::new(config, trace).run();
        assert!(result.instructions > 0, "{kind:?} retired no instructions");
        assert!(result.total_ipc() > 0.0, "{kind:?} reported zero IPC");
    }
}

#[test]
fn swapping_defenses_swap_on_hot_workloads_and_baseline_does_not() {
    let trace = hammer_trace("hammer", 0x2000, 3_000, 1 << 26, 3).into_trace();
    let baseline = System::new(tiny_config(DefenseKind::Baseline, 1200), trace.clone()).run();
    let srs = System::new(tiny_config(DefenseKind::Srs, 1200), trace).run();
    assert_eq!(baseline.swaps, 0);
    assert!(srs.swaps > 0);
    assert!(srs.controller.maintenance_busy_ns > 0);
}

#[test]
fn normalized_performance_is_sane_for_all_defenses() {
    let gcc = workload("gcc");
    for kind in
        [DefenseKind::Rrs { immediate_unswap: true }, DefenseKind::Srs, DefenseKind::ScaleSrs]
    {
        let result = run_normalized(&tiny_config(kind, 1200), &gcc);
        assert!(
            result.normalized_performance > 0.5 && result.normalized_performance <= 1.05,
            "{kind:?}: normalized = {}",
            result.normalized_performance
        );
    }
}

#[test]
fn scale_srs_swaps_less_than_rrs_on_the_same_workload() {
    // Scale-SRS uses swap rate 3 (TS twice as large), so it should need at
    // most as many swaps as RRS at swap rate 6 on identical traffic.
    let trace = hammer_trace("hammer", 0x8000, 4_000, 1 << 26, 9).into_trace();
    let rrs =
        System::new(tiny_config(DefenseKind::Rrs { immediate_unswap: true }, 1200), trace.clone())
            .run();
    let scale = System::new(tiny_config(DefenseKind::ScaleSrs, 1200), trace).run();
    assert!(rrs.swaps > 0);
    assert!(scale.swaps <= rrs.swaps, "scale {} vs rrs {}", scale.swaps, rrs.swaps);
}

#[test]
fn defense_translation_matches_simulated_state_after_a_run() {
    // Drive a defense directly with the trigger API and confirm the
    // translation stays a self-consistent permutation.
    let config = MitigationConfig::paper_default(2400, 3);
    let rows_per_bank = config.rows_per_bank;
    let mut defense = scale_srs::core::ScaleSrs::new(config);
    let mut touched = Vec::new();
    for i in 0..200u64 {
        let row = (i * 97) % 1024;
        defense.on_mitigation_trigger(0, row, i * 1_000);
        touched.push(row);
    }
    let mut seen = std::collections::HashSet::new();
    for &row in &touched {
        let loc = defense.translate(0, row);
        assert!(loc < rows_per_bank);
        if !seen.insert(loc) {
            // A location can only be reported once across distinct rows.
            let duplicates: Vec<u64> =
                touched.iter().copied().filter(|&r| defense.translate(0, r) == loc).collect();
            let unique: std::collections::HashSet<u64> = duplicates.iter().copied().collect();
            assert_eq!(unique.len(), 1, "two rows map to location {loc}: {unique:?}");
        }
    }
}

#[test]
fn hydra_tracker_runs_through_the_simulator() {
    use scale_srs::trackers::TrackerKind;
    let mut config = tiny_config(DefenseKind::ScaleSrs, 1200);
    config.tracker = TrackerKind::Hydra;
    let trace = hammer_trace("hammer", 0x2000, 2_000, 1 << 26, 5).into_trace();
    let result = System::new(config, trace).run();
    assert!(result.swaps > 0, "Hydra-tracked hammering must still trigger swaps");
}
