//! Reproducibility guarantees of the synthetic workload generators.
//!
//! Attack × defense grids are only comparable run-to-run if the victim
//! traffic is: the same `WorkloadSpec` and seed must generate the identical
//! `Trace` for every pattern family, and a specification must survive a
//! serialization round-trip bit-for-bit (the workspace's offline `serde`
//! shim is marker-only, so the round-trip goes through the hand-rolled
//! binary codec, like `Trace::to_bytes`).

use scale_srs::workloads::{all_workloads, hammer_trace, AccessPattern, WorkloadSpec};

fn spec_with(name: &str, pattern: AccessPattern) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        footprint_bytes: 1 << 26,
        base_addr: 1 << 30,
        read_fraction: 0.65,
        mean_gap: 7,
        pattern,
    }
}

fn every_pattern() -> Vec<WorkloadSpec> {
    vec![
        spec_with("uniform", AccessPattern::Uniform),
        spec_with("stream", AccessPattern::Streaming { stride: 256 }),
        spec_with("hot", AccessPattern::HotRows { hot_rows: 3, hot_fraction: 0.55 }),
        spec_with("burst", AccessPattern::RowBurst { burst: 16 }),
    ]
}

#[test]
fn same_spec_and_seed_generate_identical_traces_for_every_pattern() {
    for spec in every_pattern() {
        let a = spec.generate(5_000, 0xDECAF);
        let b = spec.generate(5_000, 0xDECAF);
        assert_eq!(a, b, "{}: generation must be deterministic per seed", spec.name);
        let c = spec.generate(5_000, 0xDECAF + 1);
        assert_ne!(a, c, "{}: a different seed must change the trace", spec.name);
    }
}

#[test]
fn named_workload_suite_is_deterministic() {
    // The grid engine regenerates traces per cell from (spec, seed); every
    // named workload of the paper's 78 must reproduce exactly.
    for workload in all_workloads() {
        let a = workload.spec().generate(500, 42);
        let b = workload.spec().generate(500, 42);
        assert_eq!(a, b, "{}: named workload must regenerate identically", workload.name);
    }
}

#[test]
fn workload_spec_round_trips_through_the_binary_codec() {
    for spec in every_pattern() {
        let bytes = spec.to_bytes();
        let back = WorkloadSpec::from_bytes(bytes).expect("well-formed encoding");
        assert_eq!(back, spec, "{}: spec must round-trip bit-for-bit", spec.name);
        // The round-tripped spec must drive the generator identically.
        assert_eq!(back.generate(1_000, 9), spec.generate(1_000, 9));
    }
}

#[test]
fn workload_spec_codec_rejects_malformed_buffers() {
    let bytes = spec_with("x", AccessPattern::Uniform).to_bytes();
    for cut in [1, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            WorkloadSpec::from_bytes(bytes.slice(0..cut)).is_none(),
            "truncation at {cut} must be rejected"
        );
    }
    assert!(WorkloadSpec::from_bytes(bytes.slice(0..0)).is_none(), "empty buffer is rejected");
}

#[test]
fn hammer_traces_are_deterministic_and_report_stable_row_sets() {
    let a = hammer_trace("h", 0x2_4000, 1_000, 1 << 24, 7);
    let b = hammer_trace("h", 0x2_4000, 1_000, 1 << 24, 7);
    assert_eq!(a, b, "hammer traces must be deterministic per seed");
    assert_eq!(a.aggressor_addrs, b.aggressor_addrs);
    assert_eq!(a.victim_addrs, b.victim_addrs);
    // Every aggressor/victim address is row-aligned by construction.
    for addr in a.aggressor_addrs.iter().chain(&a.victim_addrs) {
        assert_eq!(addr % a.row_bytes, 0, "row sets must be row-aligned");
    }
}
