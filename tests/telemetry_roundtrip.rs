//! Property tests for the telemetry codec: a [`TelemetryReport`] survives
//! JSON encode → parse → decode bit for bit, including hostile metric
//! names (control characters, quotes, backslashes), full-range `u64`
//! timestamps and values, and histogram populations sitting exactly on
//! log2 bucket boundaries.

use proptest::prelude::*;

use scale_srs::sim::telemetry::{
    EventKind, Log2Histogram, SampleSeries, TelemetryReport, TraceEvent,
};
use scale_srs::sim::{Json, ToJson};

const KIND_LABELS: [&str; 9] = [
    "swap",
    "unswap-swap",
    "place-back",
    "counter-access",
    "row-pin",
    "mitigation-trigger",
    "trh-crossing",
    "attack-phase",
    "queue-stall",
];

/// Build a name from raw bytes, keeping ASCII (control characters
/// included) and folding the rest into the escape-heavy range.
fn name_from_bytes(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| char::from(b % 128)).collect()
}

fn roundtrip(report: &TelemetryReport) {
    let compact = report.to_json().to_compact();
    let parsed = Json::parse(&compact).expect("compact encoding parses");
    assert_eq!(&TelemetryReport::from_json(&parsed).unwrap(), report);
    let pretty = report.to_json().to_pretty();
    let parsed = Json::parse(&pretty).expect("pretty encoding parses");
    assert_eq!(&TelemetryReport::from_json(&parsed).unwrap(), report);
}

proptest! {
    #[test]
    fn telemetry_report_round_trips_through_json(
        sample_interval_ns in 1u64..=u64::MAX,
        events_dropped in 0u64..=u64::MAX,
        // Full-range timestamps and values: integers must stay exact
        // through the codec, not round through an f64.
        raw_events in prop::collection::vec(
            (0u64..=u64::MAX, prop::sample::select(KIND_LABELS.to_vec()),
             0u32..=u32::MAX, 0u64..=u64::MAX),
            0..12,
        ),
        counters in prop::collection::vec(
            (prop::collection::vec(0u8..=u8::MAX, 0..10), 0u64..=u64::MAX),
            0..6,
        ),
        histogram_values in prop::collection::vec(0u64..=u64::MAX, 0..24),
        series_samples in prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..12),
        series_dropped in 0u64..=u64::MAX,
    ) {
        let events = raw_events
            .iter()
            .map(|&(at_ns, label, bank, value)| TraceEvent {
                at_ns,
                kind: EventKind::from_label(label).unwrap(),
                bank,
                value,
            })
            .collect();
        let mut histogram = Log2Histogram::new();
        for &value in &histogram_values {
            histogram.record(value);
            // Populate the neighbouring buckets too: values one below and
            // one above each boundary exercise the sparse encoding's edges.
            histogram.record(value.saturating_add(1));
            histogram.record(value.saturating_sub(1));
        }
        let report = TelemetryReport {
            sample_interval_ns,
            events,
            events_dropped,
            counters: counters
                .iter()
                .map(|(bytes, value)| (name_from_bytes(bytes), *value))
                .collect(),
            histograms: vec![("latency_ns".to_string(), histogram)],
            series: vec![(
                "bank_queue_depth".to_string(),
                SampleSeries { samples: series_samples.clone(), dropped: series_dropped },
            )],
        };
        roundtrip(&report);
    }
}

#[test]
fn control_characters_in_metric_names_survive_the_codec() {
    let nasty = [
        "tab\tnewline\ncarriage\rreturn",
        "quote\"backslash\\slash/",
        "nul\u{0000}bell\u{0007}escape\u{001b}unit\u{001f}",
        "high\u{007f}",
        "",
    ];
    let report = TelemetryReport {
        sample_interval_ns: 1,
        counters: nasty.iter().enumerate().map(|(i, &n)| (n.to_string(), i as u64)).collect(),
        histograms: nasty.iter().map(|&n| (n.to_string(), Log2Histogram::new())).collect(),
        series: nasty.iter().map(|&n| (n.to_string(), SampleSeries::default())).collect(),
        ..TelemetryReport::default()
    };
    roundtrip(&report);
}

#[test]
fn histogram_bucket_boundaries_are_exact() {
    // Bucket 0 holds only zero; bucket k holds [2^(k-1), 2^k).
    assert_eq!(Log2Histogram::bucket_of(0), 0);
    assert_eq!(Log2Histogram::bucket_of(1), 1);
    for k in 1..64 {
        let low = 1u64 << (k - 1);
        assert_eq!(Log2Histogram::bucket_of(low), k, "2^{}", k - 1);
        assert_eq!(Log2Histogram::bucket_of((low << 1) - 1), k, "2^{k} - 1");
    }
    assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);

    let mut histogram = Log2Histogram::new();
    for value in [0, 1, 2, 3, 4, (1u64 << 63) - 1, 1u64 << 63, u64::MAX] {
        histogram.record(value);
    }
    // The sum saturates rather than wrapping.
    assert_eq!(histogram.sum(), u64::MAX);
    assert_eq!(histogram.count(), 8);
    assert_eq!(histogram.bucket(0), 1);
    assert_eq!(histogram.bucket(1), 1);
    assert_eq!(histogram.bucket(2), 2);
    assert_eq!(histogram.bucket(3), 1);
    assert_eq!(histogram.bucket(63), 1);
    assert_eq!(histogram.bucket(64), 2);

    let report = TelemetryReport {
        sample_interval_ns: 25,
        histograms: vec![("edges".to_string(), histogram)],
        ..TelemetryReport::default()
    };
    roundtrip(&report);
}

#[test]
fn every_event_kind_label_round_trips() {
    for label in KIND_LABELS {
        let kind = EventKind::from_label(label).expect(label);
        assert_eq!(kind.label(), label);
    }
    assert_eq!(EventKind::from_label("not-a-kind"), None);
}

#[test]
fn perfetto_export_is_well_formed_json() {
    let report = TelemetryReport {
        sample_interval_ns: 25,
        events: vec![
            TraceEvent { at_ns: 0, kind: EventKind::Swap, bank: 3, value: 1_000 },
            TraceEvent { at_ns: u64::MAX, kind: EventKind::TrhCrossing, bank: 0, value: 0 },
        ],
        counters: vec![("maintenance_ops".to_string(), 2)],
        series: vec![(
            "bank_queue_depth".to_string(),
            SampleSeries { samples: vec![(0, 1), (25, 2)], dropped: 0 },
        )],
        ..TelemetryReport::default()
    };
    let perfetto = report.to_perfetto("gups scale-srs trh=1200");
    let parsed = Json::parse(&perfetto.to_pretty()).expect("perfetto JSON parses");
    let trace_events =
        parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert!(!trace_events.is_empty());
    for event in trace_events {
        assert!(event.get("ph").and_then(Json::as_str).is_some(), "every event has a phase");
    }
}
