//! The snapshot/fork primitive and the sharing-aware grid executor are
//! pure optimizations: a run resumed from a fork must be **bit-identical**
//! — `SimResult` and `SecurityReport` included — to an uninterrupted
//! from-scratch run, and a grid executed with prefix sharing must be
//! bit-identical to the same grid simulated cell by cell.

use proptest::prelude::*;

use scale_srs::attack::engine::{AttackPattern, AttackSpec};
use scale_srs::attack::search::shipped_candidates;
use scale_srs::core::DefenseKind;
use scale_srs::sim::spec::{ConfigPatch, ExperimentSpec};
use scale_srs::sim::{score_solo, warm_system, Experiment, System, SystemConfig};
use scale_srs::trackers::TrackerKind;
use scale_srs::workloads::{all_workloads, AccessPattern, NamedWorkload, Trace, WorkloadSpec};

fn fork_config(defense: DefenseKind, tracker: TrackerKind, attacked: bool) -> SystemConfig {
    let mut config = SystemConfig::scaled_for_speed(defense, if attacked { 300 } else { 1200 });
    config.tracker = tracker;
    config.cores = 2;
    config.core.target_instructions = 4_000;
    config.trace_records_per_core = 1_500;
    config.dram.refresh_window_ns = 400_000;
    config.max_sim_ns = 2_000_000;
    if attacked {
        config.cores = 1;
        config.core.target_instructions = u64::MAX / 2;
        config.dram.refresh_window_ns = 8_000_000;
        config.attack =
            Some(AttackSpec::new("fork-single", AttackPattern::SingleSided { bank: 0, row: 64 }));
    }
    config
}

fn fork_trace(records: usize) -> Trace {
    WorkloadSpec {
        name: "fork-hot".to_string(),
        footprint_bytes: 1 << 24,
        base_addr: 0,
        read_fraction: 0.7,
        mean_gap: 2,
        pattern: AccessPattern::HotRows { hot_rows: 2, hot_fraction: 0.6 },
    }
    .generate(records, 11)
}

proptest! {
    /// A run forked from a snapshot at an arbitrary point — across every
    /// defense, both trackers, attacked and benign cells — must match the
    /// uninterrupted run bit for bit, and so must the snapshotted original
    /// resumed after the fork (deep-copy independence).
    #[test]
    fn forked_run_is_bit_identical_to_from_scratch(
        defense in prop::sample::select(vec![
            DefenseKind::Baseline,
            DefenseKind::Rrs { immediate_unswap: true },
            DefenseKind::Rrs { immediate_unswap: false },
            DefenseKind::Srs,
            DefenseKind::ScaleSrs,
        ]),
        tracker in prop::sample::select(vec![TrackerKind::MisraGries, TrackerKind::Hydra]),
        attacked in prop::bool::ANY,
        fork_tenths in 1u64..10,
    ) {
        let config = fork_config(defense, tracker, attacked);
        let trace = fork_trace(1_500);
        let reference = System::new(config.clone(), trace.clone()).run();

        let mut original = System::new(config, trace);
        original.run_until_ns(reference.elapsed_ns * fork_tenths / 10);
        let forked = original.fork();

        // The fork continues to the reference result...
        prop_assert_eq!(&forked.run(), &reference);
        // ...and the original, resumed after the fork was taken, does too.
        prop_assert_eq!(&original.run(), &reference);
    }

    /// The activation-drain mode is a pure dispatch choice, so it must
    /// commute with snapshot/fork: a run whose prefix used one drain mode
    /// and whose forked continuation uses the other must still match a
    /// reference run executed entirely in the default (batched) mode —
    /// across every defense, both trackers, attacked and benign cells.
    #[test]
    fn drain_mode_commutes_with_fork(
        defense in prop::sample::select(vec![
            DefenseKind::Baseline,
            DefenseKind::Rrs { immediate_unswap: true },
            DefenseKind::Srs,
            DefenseKind::ScaleSrs,
        ]),
        tracker in prop::sample::select(vec![TrackerKind::MisraGries, TrackerKind::Hydra]),
        attacked in prop::bool::ANY,
        prefix_per_event in prop::bool::ANY,
        fork_tenths in 1u64..10,
    ) {
        let config = fork_config(defense, tracker, attacked);
        let trace = fork_trace(1_500);
        let reference = System::new(config.clone(), trace.clone()).run();

        let mut original = System::new(config, trace);
        original.set_per_event_drain(prefix_per_event);
        original.run_until_ns(reference.elapsed_ns * fork_tenths / 10);
        let mut forked = original.fork();
        forked.set_per_event_drain(!prefix_per_event);
        prop_assert_eq!(&forked.run(), &reference);
    }
}

fn tiny() -> ConfigPatch {
    ConfigPatch {
        cores: Some(2),
        target_instructions: Some(4_000),
        trace_records_per_core: Some(1_500),
        refresh_window_ns: Some(500_000),
        max_sim_ns: Some(3_000_000),
        ..ConfigPatch::default()
    }
}

fn grid_workloads() -> Vec<NamedWorkload> {
    all_workloads().into_iter().filter(|w| w.name == "gups" || w.name == "gcc").collect()
}

/// The real gate on the sharing-aware executor: a grid crossing every
/// defense (the baseline included, so baseline cells flow through the
/// trunk-relabel path), both trackers (Hydra diverges on counter-table
/// traffic, not on mitigation), and two thresholds must produce exactly
/// the same result stream with sharing on and off.
#[test]
fn shared_grid_is_bit_identical_to_unshared() {
    let experiment = Experiment::new()
        .with_defenses(vec![
            DefenseKind::Baseline,
            DefenseKind::Rrs { immediate_unswap: true },
            DefenseKind::Srs,
            DefenseKind::ScaleSrs,
        ])
        .with_trackers(vec![TrackerKind::MisraGries, TrackerKind::Hydra])
        .with_thresholds(vec![1200, 2400])
        .with_workloads(grid_workloads())
        .with_patch(tiny())
        .with_threads(4);
    assert!(experiment.share_prefixes(), "sharing must be the default");
    let shared = experiment.clone().run();
    let unshared = experiment.with_share_prefixes(false).run();
    assert_eq!(shared.len(), 32);
    for (s, u) in shared.iter().zip(&unshared) {
        assert_eq!(
            s, u,
            "{} on {} trh={} tracker={} diverged between shared and unshared",
            s.scenario.defense, s.scenario.workload.name, s.scenario.t_rh, s.scenario.tracker
        );
    }
}

/// The attack search scores a whole generation by forking one warmed
/// snapshot (`System::fork_each`) instead of re-warming per candidate.
/// That batching is a pure optimization: each candidate's security report
/// must be bit-identical to a from-scratch run that warms its own system
/// and installs the same attack (`score_solo`). The shipped library spans
/// every pattern kind, so this exercises each `install_attack` wiring path.
#[test]
fn fork_batch_scoring_is_bit_identical_to_solo_scoring() {
    let spec = ExperimentSpec::parse(
        r#"{
            "name": "fork-batch-equivalence",
            "preset": "scaled_for_speed",
            "patch": {
                "cores": 1,
                "target_instructions": 9223372036854775807,
                "trace_records_per_core": 1500,
                "refresh_window_ns": 8000000,
                "max_sim_ns": 1500000
            },
            "defenses": ["srs"],
            "thresholds": [300],
            "workloads": ["gups"],
            "search": { "population": 4, "generations": 1, "warmup_ns": 250000, "seed": 7 }
        }"#,
    )
    .expect("inline spec parses");
    let search = spec.search.clone().expect("spec carries a search block");
    let warm = warm_system(&spec, &search).expect("warm the search cell");
    let shipped = shipped_candidates();
    let batch = warm.fork_each(shipped.iter().map(|c| c.to_attack_spec()).collect(), 4);
    assert_eq!(batch.len(), shipped.len());
    for (candidate, result) in shipped.iter().zip(&batch) {
        let solo = score_solo(&spec, &search, candidate).expect("solo scoring run");
        assert_eq!(
            result.security.as_ref(),
            Some(&solo),
            "{}: fork-batch report diverged from from-scratch scoring",
            candidate.name
        );
    }
}

/// Attacked cells never join a prefix group (the attacker adapts to the
/// defense's threshold from its first read); a mixed grid must still be
/// bit-identical under both execution plans, with every attacked cell
/// carrying its security report.
#[test]
fn mixed_attacked_grid_is_bit_identical_to_unshared() {
    let attack = AttackSpec::new("single", AttackPattern::SingleSided { bank: 0, row: 64 });
    let experiment = Experiment::new()
        .with_defenses(vec![DefenseKind::Baseline, DefenseKind::Srs, DefenseKind::ScaleSrs])
        .with_thresholds(vec![600])
        .with_attacks(vec![attack])
        .with_workloads(grid_workloads())
        .with_patch(tiny())
        .with_threads(4);
    let shared = experiment.clone().run();
    let unshared = experiment.with_share_prefixes(false).run();
    assert_eq!(shared, unshared);
    for r in &shared {
        assert!(r.result.detail.security.is_some(), "attacked cells carry a security report");
    }
}

/// The fault model's damage store, RNG cursors and scrub deadline are all
/// part of the snapshot: a fork taken at any point mid-attack must finish
/// with the byte-identical integrity report of an uninterrupted run.
#[test]
fn integrity_report_commutes_with_fork() {
    use scale_srs::dram::EccKind;
    let mut config =
        fork_config(DefenseKind::Rrs { immediate_unswap: true }, TrackerKind::MisraGries, true);
    if let Some(attack) = config.attack.as_mut() {
        attack.stop_at_first_crossing = false;
    }
    config.faults.enabled = true;
    config.faults.ecc = EccKind::Secded;
    config.faults.scrub_interval_ns = 250_000;
    let trace = fork_trace(1_500);
    let reference = System::new(config.clone(), trace.clone()).run();
    let report = reference.integrity.as_ref().expect("fault-model run carries a report");
    assert!(report.bit_flips_injected > 0, "the attacked run must actually flip bits");
    for tenths in [2u64, 5, 8] {
        let mut original = System::new(config.clone(), trace.clone());
        original.run_until_ns(reference.elapsed_ns * tenths / 10);
        let forked = original.fork();
        assert_eq!(forked.run(), reference, "fork at {tenths}/10 diverged");
        assert_eq!(original.run(), reference, "resumed original at {tenths}/10 diverged");
    }
}
