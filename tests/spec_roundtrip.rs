//! Property tests for the experiment-spec codec: a generated
//! `ExperimentSpec` survives JSON encode → parse → decode bit for bit, and
//! the decoded spec resolves to the identical scenario grid.

use proptest::prelude::*;

use scale_srs::dram::EccKind;
use scale_srs::sim::spec::{ConfigPatch, ExperimentSpec, Preset};
use scale_srs::sim::telemetry::TelemetryConfig;
use scale_srs::sim::{FaultsConfig, ToJson};

proptest! {
    #[test]
    fn experiment_spec_round_trips_through_json(
        defenses in prop::collection::vec(
            prop::sample::select(vec!["baseline", "rrs", "rrs-no-unswap", "srs", "scale-srs"]),
            1..4,
        ),
        tracker in prop::sample::select(vec!["misra-gries", "hydra"]),
        thresholds in prop::collection::vec(1u64..100_000, 1..4),
        seeds in prop::collection::vec(0u64..=u64::MAX, 0..4),
        knobs in (prop::bool::ANY, prop::bool::ANY, prop::bool::ANY, prop::bool::ANY),
        values in (1u64..64, 1_000u64..1_000_000, 0u64..=u64::MAX, 1u64..10_000_000),
        workloads in prop::collection::vec(
            prop::sample::select(vec![
                "all", "hot-rows", "suite:gups", "suite:spec2006", "gcc", "gups", "mcf",
            ]),
            1..4,
        ),
        paper in prop::bool::ANY,
        share_prefixes in prop::bool::ANY,
        telemetry in prop::option::of((prop::bool::ANY, 1u64..10_000_000, 1usize..1_000_000)),
        faults in prop::option::of((
            prop::bool::ANY,
            prop::sample::select(vec![EccKind::None, EccKind::Secded, EccKind::ChipkillLite]),
            0u64..10_000_000,
        )),
        attacks in prop::collection::vec(
            prop::sample::select(vec!["juggernaut", "blacksmith", "single-sided"]),
            0..3,
        ),
    ) {
        let (has_cores, has_instructions, has_seed, has_cap) = knobs;
        let (cores, instructions, seed, max_sim_ns) = values;
        let spec = ExperimentSpec {
            name: "prop".to_string(),
            preset: if paper { Preset::Paper } else { Preset::ScaledForSpeed },
            patch: ConfigPatch {
                cores: has_cores.then_some(cores as usize),
                target_instructions: has_instructions.then_some(instructions),
                // Full-range u64 seeds: integers must stay exact through
                // the codec, not round through an f64.
                seed: has_seed.then_some(seed),
                max_sim_ns: has_cap.then_some(max_sim_ns),
                ..ConfigPatch::default()
            },
            defenses: defenses.iter().map(ToString::to_string).collect(),
            trackers: vec![tracker.to_string()],
            thresholds,
            core_counts: Vec::new(),
            seeds,
            attacks: attacks.iter().map(ToString::to_string).collect(),
            workloads: workloads.iter().map(ToString::to_string).collect(),
            threads: None,
            share_prefixes,
            telemetry: telemetry.map(|(enabled, sample_interval_ns, capacity)| TelemetryConfig {
                enabled,
                sample_interval_ns,
                event_capacity: capacity,
                sample_capacity: capacity,
            }),
            faults: faults.map(|(enabled, ecc, scrub_interval_ns)| FaultsConfig {
                enabled,
                ecc,
                scrub_interval_ns,
            }),
            search: None,
        };

        // Both wire forms decode back to the identical spec.
        let compact = spec.to_json().to_compact();
        prop_assert_eq!(&ExperimentSpec::parse(&compact).unwrap(), &spec);
        let pretty = spec.to_json_string();
        let decoded = ExperimentSpec::parse(&pretty).unwrap();
        prop_assert_eq!(&decoded, &spec);

        // And resolution is invariant under the round trip: the re-decoded
        // spec enumerates the very same scenario sequence.
        let original = spec.to_experiment().unwrap();
        let reparsed = decoded.to_experiment().unwrap();
        prop_assert_eq!(original.scenarios(), reparsed.scenarios());
    }
}
