//! Property tests for the adaptive attack-search subsystem: the genetic
//! operators must be **total** (any gene values the search can reach
//! compile into a runnable [`PatternProgram`]) and the whole search must
//! be **bit-deterministic** per seed — the reproducibility contract the
//! `srs-cli search` JSONL stream and its `--resume` path are built on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use scale_srs::attack::engine::PatternProgram;
use scale_srs::attack::search::{
    crossover, genes, mutate, pattern_from_genes, Score, Search, SearchConfig,
};

/// A synthetic, deterministic fitness: a hash of the candidate's genes and
/// the scoring salt. No simulation — these tests gate the search mechanics,
/// not the simulator (which `tests/fork_equivalence.rs` covers).
fn synthetic_score(pattern: &scale_srs::attack::engine::AttackPattern, salt: u64) -> Score {
    let (kind, gene_values) = genes(pattern);
    let mut h = kind ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for g in gene_values {
        h = (h ^ g).wrapping_mul(0x100_0000_01B3);
    }
    Score {
        first_crossing_ns: h.is_multiple_of(3).then_some(1 + h % 1_000_000),
        max_pressure: h % 600,
        t_rh: 600,
        closest_ns: Some(h % 8_000_000),
    }
}

/// Run `config.generations` generations under the synthetic fitness and
/// return the full gene history: every candidate of every generation as
/// `(name, seed, kind, genes)`.
fn evolve(config: SearchConfig, salt: u64) -> Vec<(String, u64, u64, Vec<u64>)> {
    let mut search = Search::new(config);
    let mut history = Vec::new();
    loop {
        for candidate in search.population() {
            let (kind, gene_values) = genes(&candidate.pattern);
            history.push((candidate.name.clone(), candidate.seed, kind, gene_values));
        }
        if search.done() {
            return history;
        }
        let scores: Vec<Score> =
            search.population().iter().map(|c| synthetic_score(&c.pattern, salt)).collect();
        search.advance(&scores);
    }
}

proptest! {
    /// Any mutation/crossover chain — arbitrary rates, arbitrary RNG seed —
    /// yields patterns that compile against a deliberately tiny geometry:
    /// the compiler's clamping must absorb every reachable gene value, so
    /// the search can never produce an attacker the simulator rejects.
    #[test]
    fn operator_chains_always_compile(
        rng_seed in 0u64..=u64::MAX,
        rate_percent in 0u64..=100,
        kind in 0u64..=u64::MAX,
        raw_genes in prop::collection::vec(0u64..=u64::MAX, 0..6),
        steps in 1usize..40,
    ) {
        let rate = rate_percent as f64 / 100.0;
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut current = pattern_from_genes(kind, &raw_genes);
        let partner = pattern_from_genes(kind.wrapping_add(1), &raw_genes);
        for step in 0..steps {
            current = if step % 2 == 0 {
                mutate(&current, &mut rng, rate)
            } else {
                crossover(&current, &partner, &mut rng)
            };
            let program = PatternProgram::compile(&current, 2, 8, step as u64);
            prop_assert!(!program.slots.is_empty(), "empty schedule for {current:?}");
        }
    }

    /// Gene extraction and re-synthesis are mutually consistent: a pattern
    /// rebuilt from its own genes is the identical pattern (the operators
    /// manipulate genes, so a lossy round-trip would silently corrupt
    /// candidates between generations).
    #[test]
    fn gene_round_trip_is_lossless(kind in 0u64..=u64::MAX, raw in prop::collection::vec(0u64..=u64::MAX, 0..6)) {
        let pattern = pattern_from_genes(kind, &raw);
        let (k, g) = genes(&pattern);
        prop_assert_eq!(pattern_from_genes(k, &g), pattern);
    }

    /// The search is bit-deterministic per seed: two runs with the same
    /// config and the same fitness produce the same candidates — names,
    /// attacker seeds and genes — in every generation.
    #[test]
    fn evolution_is_bit_deterministic_per_seed(
        seed in 0u64..=u64::MAX,
        salt in 0u64..=u64::MAX,
        population in 2usize..8,
        generations in 1usize..5,
    ) {
        let config = SearchConfig::new(population, generations, seed);
        let first = evolve(config.clone(), salt);
        let second = evolve(config, salt);
        prop_assert_eq!(&first, &second, "same seed must replay bit-identically");
    }
}
