//! Integration tests for the paper's security claims, tying the analytical
//! attack models to the behaviour of the implemented defenses.

use scale_srs::attack::{birthday, juggernaut, outlier, AttackParams};
use scale_srs::core::{
    MitigationAction, MitigationConfig, RandomizedRowSwap, RowOpKind, RowSwapDefense, SecureRowSwap,
};

/// Count how many latent activations a defense performs at the aggressor's
/// original (home) location over `triggers` consecutive mitigations.
fn latent_home_activations(defense: &mut dyn RowSwapDefense, home: u64, triggers: u64) -> usize {
    let mut count = 0;
    for i in 0..triggers {
        for action in defense.on_mitigation_trigger(0, home, i * 10_000) {
            if let MitigationAction::RowOperation { kind, activations, .. } = action {
                if matches!(kind, RowOpKind::Swap | RowOpKind::UnswapSwap) {
                    count += activations.iter().filter(|&&r| r == home).count();
                }
            }
        }
    }
    count
}

#[test]
fn rrs_accumulates_latent_activations_and_srs_does_not() {
    // This is the mechanism behind Juggernaut (Key Observation 1): N
    // unswap-swaps give RRS roughly 2N latent activations at the home
    // location, while SRS only ever touches it once (the initial swap).
    let triggers = 50;
    let mut rrs = RandomizedRowSwap::new(MitigationConfig::paper_default(4800, 6));
    let mut srs = SecureRowSwap::new(MitigationConfig::paper_default(4800, 6));
    let rrs_latent = latent_home_activations(&mut rrs, 7777, triggers);
    let srs_latent = latent_home_activations(&mut srs, 7777, triggers);
    assert!(rrs_latent as u64 >= 2 * (triggers - 1), "rrs latent = {rrs_latent}");
    assert_eq!(srs_latent, 1, "srs must only touch the home location on the initial swap");
}

#[test]
fn analytical_model_reflects_the_mechanism() {
    // Because SRS removes the latent activations, Juggernaut degenerates to
    // the plain random-guess attack, whose time-to-break is close to the
    // birthday analysis at the same swap rate.
    let srs_days = juggernaut::time_to_break_srs_days(4800, 6);
    let rrs_days = juggernaut::time_to_break_rrs_days(4800, 6);
    let untargeted_days = birthday::time_to_break_days(4800, 6);
    assert!(rrs_days < 1.0);
    assert!(srs_days > 365.0);
    // SRS under Juggernaut is within two orders of magnitude of the
    // untargeted attack (same structure, slightly fewer required hits).
    assert!(srs_days < untargeted_days);
    assert!(srs_days * 500.0 > untargeted_days);
}

#[test]
fn juggernaut_single_window_break_matches_equation_one() {
    // At TRH <= 2*TS + L*N_max the attack finishes within one window.
    let params = AttackParams::rrs(1200, 6);
    let best = juggernaut::best_attack(&params).expect("feasible");
    assert!(best.single_window_break());
    // Verify against Equation 1 directly.
    let needed_rounds =
        ((1200.0 - 2.0 * params.t_s as f64) / params.latent_per_round).ceil() as u64;
    assert!(best.attack_rounds >= needed_rounds || best.required_guesses == 0);
}

#[test]
fn scale_srs_design_point_is_justified_by_outlier_rarity() {
    // The paper picks swap rate 3 because windows with more than 3 outliers
    // essentially never happen, and windows with exactly 3 are ~monthly.
    let three = outlier::days_until_outliers(4800, 3, 3);
    let four = outlier::days_until_outliers(4800, 3, 4);
    assert!(three > 1.0, "3 simultaneous outliers must be rarer than daily ({three} days)");
    assert!(four / three > 50.0, "4 outliers must be far rarer than 3");
}

#[test]
fn ddr5_and_open_page_discussion_points_hold() {
    // Discussion §3: open-page makes Juggernaut slower but does not fix RRS
    // at low TRH.
    let mut open = AttackParams::rrs(1200, 10);
    open.page_policy = scale_srs::attack::AttackPagePolicy::OpenPage;
    let days = juggernaut::best_attack(&open).expect("feasible").expected_time_days();
    assert!(days < 1.0, "open-page RRS at TRH 1200 must still break in < 1 day ({days})");

    // Discussion §5: DDR5's doubled refresh rate does not save RRS either.
    let ddr5 = AttackParams::rrs(3000, 8).with_ddr5_refresh();
    let days = juggernaut::best_attack(&ddr5).expect("feasible").expected_time_days();
    assert!(days < 1.0, "DDR5 RRS at TRH 3000 must still break in < 1 day ({days})");
}

#[test]
fn multibank_attack_is_weaker() {
    let params = AttackParams::rrs(4800, 6);
    let single = scale_srs::attack::multibank::evaluate(&params, 1).unwrap();
    let sixteen = scale_srs::attack::multibank::evaluate(&params, 16).unwrap();
    assert!(sixteen.expected_time_seconds > single.expected_time_seconds * 10.0);
}
