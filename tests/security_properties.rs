//! Integration tests for the paper's security claims, tying the analytical
//! attack models to the behaviour of the implemented defenses — and, since
//! the closed-loop attack engine landed, to the *simulated* defenses: every
//! shipped attack pattern is driven through the real controller, tracker
//! and defense, and the resulting per-victim-row pressure is checked
//! against `TRH`.

use scale_srs::attack::engine::{shipped_patterns, PatternProgram};
use scale_srs::attack::search::{Candidate, Search};
use scale_srs::attack::{birthday, juggernaut, outlier, AttackParams, AttackSpec};
use scale_srs::core::{
    DefenseKind, MitigationAction, MitigationConfig, RandomizedRowSwap, RowOpKind, RowSwapDefense,
    SecureRowSwap,
};
use scale_srs::dram::{AddressMapper, BankId};
use scale_srs::sim::spec::ExperimentSpec;
use scale_srs::sim::{score_from_report, warm_system};
use scale_srs::sim::{SecurityReport, SimResult, System, SystemConfig};
use scale_srs::workloads::{AccessPattern, MemOp, Trace, TraceRecord, WorkloadSpec};

/// Count how many latent activations a defense performs at the aggressor's
/// original (home) location over `triggers` consecutive mitigations.
fn latent_home_activations(defense: &mut dyn RowSwapDefense, home: u64, triggers: u64) -> usize {
    let mut count = 0;
    for i in 0..triggers {
        for action in defense.on_mitigation_trigger(0, home, i * 10_000) {
            if let MitigationAction::RowOperation { kind, activations, .. } = action {
                if matches!(kind, RowOpKind::Swap | RowOpKind::UnswapSwap) {
                    count += activations.iter().filter(|&&r| r == home).count();
                }
            }
        }
    }
    count
}

#[test]
fn rrs_accumulates_latent_activations_and_srs_does_not() {
    // This is the mechanism behind Juggernaut (Key Observation 1): N
    // unswap-swaps give RRS roughly 2N latent activations at the home
    // location, while SRS only ever touches it once (the initial swap).
    let triggers = 50;
    let mut rrs = RandomizedRowSwap::new(MitigationConfig::paper_default(4800, 6));
    let mut srs = SecureRowSwap::new(MitigationConfig::paper_default(4800, 6));
    let rrs_latent = latent_home_activations(&mut rrs, 7777, triggers);
    let srs_latent = latent_home_activations(&mut srs, 7777, triggers);
    assert!(rrs_latent as u64 >= 2 * (triggers - 1), "rrs latent = {rrs_latent}");
    assert_eq!(srs_latent, 1, "srs must only touch the home location on the initial swap");
}

#[test]
fn analytical_model_reflects_the_mechanism() {
    // Because SRS removes the latent activations, Juggernaut degenerates to
    // the plain random-guess attack, whose time-to-break is close to the
    // birthday analysis at the same swap rate.
    let srs_days = juggernaut::time_to_break_srs_days(4800, 6);
    let rrs_days = juggernaut::time_to_break_rrs_days(4800, 6);
    let untargeted_days = birthday::time_to_break_days(4800, 6);
    assert!(rrs_days < 1.0);
    assert!(srs_days > 365.0);
    // SRS under Juggernaut is within two orders of magnitude of the
    // untargeted attack (same structure, slightly fewer required hits).
    assert!(srs_days < untargeted_days);
    assert!(srs_days * 500.0 > untargeted_days);
}

#[test]
fn juggernaut_single_window_break_matches_equation_one() {
    // At TRH <= 2*TS + L*N_max the attack finishes within one window.
    let params = AttackParams::rrs(1200, 6);
    let best = juggernaut::best_attack(&params).expect("feasible");
    assert!(best.single_window_break());
    // Verify against Equation 1 directly.
    let needed_rounds =
        ((1200.0 - 2.0 * params.t_s as f64) / params.latent_per_round).ceil() as u64;
    assert!(best.attack_rounds >= needed_rounds || best.required_guesses == 0);
}

#[test]
fn scale_srs_design_point_is_justified_by_outlier_rarity() {
    // The paper picks swap rate 3 because windows with more than 3 outliers
    // essentially never happen, and windows with exactly 3 are ~monthly.
    let three = outlier::days_until_outliers(4800, 3, 3);
    let four = outlier::days_until_outliers(4800, 3, 4);
    assert!(three > 1.0, "3 simultaneous outliers must be rarer than daily ({three} days)");
    assert!(four / three > 50.0, "4 outliers must be far rarer than 3");
}

#[test]
fn ddr5_and_open_page_discussion_points_hold() {
    // Discussion §3: open-page makes Juggernaut slower but does not fix RRS
    // at low TRH.
    let mut open = AttackParams::rrs(1200, 10);
    open.page_policy = scale_srs::attack::AttackPagePolicy::OpenPage;
    let days = juggernaut::best_attack(&open).expect("feasible").expected_time_days();
    assert!(days < 1.0, "open-page RRS at TRH 1200 must still break in < 1 day ({days})");

    // Discussion §5: DDR5's doubled refresh rate does not save RRS either.
    let ddr5 = AttackParams::rrs(3000, 8).with_ddr5_refresh();
    let days = juggernaut::best_attack(&ddr5).expect("feasible").expected_time_days();
    assert!(days < 1.0, "DDR5 RRS at TRH 3000 must still break in < 1 day ({days})");
}

#[test]
fn multibank_attack_is_weaker() {
    let params = AttackParams::rrs(4800, 6);
    let single = scale_srs::attack::multibank::evaluate(&params, 1).unwrap();
    let sixteen = scale_srs::attack::multibank::evaluate(&params, 16).unwrap();
    assert!(sixteen.expected_time_seconds > single.expected_time_seconds * 10.0);
}

/// The simulated attack-evaluation cell shared by the per-pattern tests:
/// one lightly loaded victim core plus the pattern's closed-loop attacker,
/// at paper-default swap rates (6 for RRS/SRS, 3 for Scale-SRS, via
/// `DefenseKind::default_swap_rate`) and a TRH scaled alongside the
/// shortened refresh window so crossings stay within test-sized runs.
const SIM_TRH: u64 = 600;

fn attack_config(defense: DefenseKind) -> SystemConfig {
    let mut config = SystemConfig::scaled_for_speed(defense, SIM_TRH);
    config.cores = 1;
    config.core.target_instructions = u64::MAX / 2;
    config.trace_records_per_core = 2_000;
    config.dram.refresh_window_ns = 8_000_000;
    // Long enough for RRS's latent-harvest crossing (~4.5 ms at this TRH);
    // crossing runs stop early, so only the defended runs pay the full cap.
    config.max_sim_ns = 6_000_000;
    config
}

fn victim_trace() -> Trace {
    WorkloadSpec {
        name: "victim-light".to_string(),
        footprint_bytes: 1 << 24,
        base_addr: 1 << 32,
        read_fraction: 0.7,
        mean_gap: 200,
        pattern: AccessPattern::Uniform,
    }
    .generate(2_000, 3)
}

fn simulate_attacked(defense: DefenseKind, spec: AttackSpec) -> SecurityReport {
    let mut config = attack_config(defense);
    config.attack = Some(spec);
    let result = System::new(config, victim_trace()).run();
    result.security.expect("attacked run carries a security report")
}

/// A victim trace that sweeps every cache line of every row in the attack
/// pattern's blast radius, reads only (a store would overwrite — heal — a
/// damaged line). Generic victim workloads essentially never touch the
/// handful of rows an attack damages, so demonstrating *served* corruption
/// end to end needs a victim that actually consumes the data at risk.
fn blast_radius_reads(config: &SystemConfig, spec: &AttackSpec) -> Trace {
    let mapper = AddressMapper::new(config.dram.clone());
    let mut records = Vec::new();
    // Mirror the per-stream seeding of `AttackerCore::new` so the sweep
    // covers exactly the rows the in-simulator attackers will pressure.
    for stream in 0..spec.attacker_cores.max(1) as u64 {
        let seed = spec.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let program = PatternProgram::compile(
            &spec.pattern,
            config.dram.total_banks(),
            config.dram.rows_per_bank,
            seed,
        );
        for (bank, row) in program.victims {
            let base = mapper
                .address_of(BankId::new(bank), row)
                .expect("compiled victim rows stay inside the geometry")
                .value();
            for line in 0..config.dram.lines_per_row() {
                records.push(TraceRecord {
                    nonmem_insts: 40,
                    op: MemOp::Read,
                    addr: base + line * config.dram.line_size_bytes,
                });
            }
        }
    }
    assert!(!records.is_empty(), "{}: pattern compiled to an empty blast radius", spec.name);
    Trace::new("victim-blast-radius", records)
}

/// Run an attacked cell with the end-to-end fault model enabled (no ECC, so
/// every served flip is a silently corrupted read) and a victim core that
/// reads the blast radius for the whole run.
fn simulate_with_faults(defense: DefenseKind, spec: AttackSpec, max_sim_ns: u64) -> SimResult {
    let mut config = attack_config(defense);
    config.max_sim_ns = max_sim_ns;
    config.faults.enabled = true;
    let trace = blast_radius_reads(&config, &spec);
    config.attack = Some(spec);
    System::new(config, trace).run()
}

#[test]
fn every_shipped_pattern_breaks_the_undefended_baseline() {
    for spec in shipped_patterns() {
        let report = simulate_attacked(DefenseKind::Baseline, spec.clone());
        assert!(
            report.trh_crossed,
            "{}: baseline must cross TRH (max pressure {})",
            spec.name, report.max_victim_pressure
        );
        assert!(
            report.first_crossing_ns.unwrap() < 1_000_000,
            "{}: undefended crossing must be fast, was {:?}",
            spec.name,
            report.first_crossing_ns
        );
    }
}

#[test]
fn no_shipped_pattern_defeats_srs_or_scale_srs_in_simulation() {
    for spec in shipped_patterns() {
        for defense in [DefenseKind::Srs, DefenseKind::ScaleSrs] {
            // Run through to the cap so the whole window's pressure counts.
            let report = simulate_attacked(defense, spec.clone().run_to_cap());
            assert!(
                report.max_victim_pressure < SIM_TRH,
                "{} vs {defense}: pressure {} reached TRH {SIM_TRH}",
                spec.name,
                report.max_victim_pressure
            );
            assert!(!report.trh_crossed, "{} vs {defense}: must not cross", spec.name);
        }
    }
}

/// The adaptive search's Kerckhoffs gate: evolve attackers against the
/// undefended baseline (the strongest fitness signal), then replay every
/// attacker the search ends with — the evolved population plus its
/// champion — against SRS and Scale-SRS with the crossing cutoff disabled.
/// Neither defense may cross TRH against any of them.
#[test]
fn srs_and_scale_srs_hold_against_searched_attackers() {
    let spec = ExperimentSpec::parse(
        r#"{
            "name": "security-search",
            "preset": "scaled_for_speed",
            "patch": {
                "cores": 1,
                "target_instructions": 9223372036854775807,
                "trace_records_per_core": 2000,
                "refresh_window_ns": 8000000,
                "max_sim_ns": 6000000
            },
            "defenses": ["baseline"],
            "thresholds": [600],
            "workloads": ["gups"],
            "search": { "population": 6, "generations": 2, "warmup_ns": 200000, "seed": 99, "elites": 1 }
        }"#,
    )
    .expect("inline spec parses");
    let search_spec = spec.search.clone().expect("spec carries a search block");
    let warm = warm_system(&spec, &search_spec).expect("warm the search cell");
    let mut search = Search::new(search_spec.to_search_config());
    while !search.done() {
        let results =
            warm.fork_each(search.population().iter().map(|c| c.to_attack_spec()).collect(), 4);
        let scores: Vec<_> = results
            .iter()
            .map(|r| score_from_report(r.security.as_ref().expect("attacked run")))
            .collect();
        search.advance(&scores);
    }
    let champion = search.best().expect("scored generations").0.clone();
    // The evolved champion must not merely cross the TRH proxy on the
    // baseline — it must corrupt data a victim actually reads, end to end.
    let broken = simulate_with_faults(
        DefenseKind::Baseline,
        champion.to_attack_spec().run_to_cap(),
        3_000_000,
    );
    let integrity = broken.integrity.expect("fault-model run carries an integrity report");
    assert!(
        integrity.corrupted_reads > 0,
        "searched champion {} must serve corrupted reads on the baseline ({} flips landed)",
        champion.name,
        integrity.bit_flips_injected
    );
    let mut found: Vec<Candidate> = search.population().to_vec();
    found.push(champion);
    for candidate in &found {
        for defense in [DefenseKind::Srs, DefenseKind::ScaleSrs] {
            let result =
                simulate_with_faults(defense, candidate.to_attack_spec().run_to_cap(), 6_000_000);
            let report = result.security.as_ref().expect("attacked run carries a security report");
            assert!(
                report.max_victim_pressure < SIM_TRH,
                "searched attacker {} vs {defense}: pressure {} reached TRH {SIM_TRH}",
                candidate.name,
                report.max_victim_pressure
            );
            assert!(
                !report.trh_crossed,
                "searched attacker {} vs {defense}: must not cross",
                candidate.name
            );
            let integrity =
                result.integrity.as_ref().expect("fault-model run carries an integrity report");
            assert_eq!(
                integrity.corrupted_reads, 0,
                "searched attacker {} vs {defense}: no corrupted read may ever be served",
                candidate.name
            );
        }
    }
}

#[test]
fn simulated_juggernaut_reproduces_the_latent_activation_mechanism() {
    // The closed-loop run must exhibit the analytical model's mechanism:
    // under RRS the hottest victim's pressure is dominated by *latent*
    // (mitigation-issued) activations and the attack crosses TRH, while the
    // same attacker against SRS harvests almost nothing.
    let juggernaut = shipped_patterns()
        .into_iter()
        .find(|spec| spec.name == "juggernaut")
        .expect("library ships juggernaut");
    let rrs = simulate_attacked(DefenseKind::Rrs { immediate_unswap: true }, juggernaut.clone());
    assert!(rrs.trh_crossed, "RRS must be broken by the in-simulator Juggernaut");
    assert!(
        rrs.latent_on_hottest_row * 2 > rrs.max_victim_pressure,
        "latent activations must dominate the crossing ({} of {})",
        rrs.latent_on_hottest_row,
        rrs.max_victim_pressure
    );
    assert!(rrs.unswap_swaps > 0, "the harvest comes from unswap-swap pairs");

    let srs = simulate_attacked(DefenseKind::Srs, juggernaut.run_to_cap());
    assert_eq!(srs.unswap_swaps, 0, "SRS performs no unswap-swaps");
    assert!(
        srs.latent_on_hottest_row < 16,
        "SRS must leave (almost) no latent harvest, saw {}",
        srs.latent_on_hottest_row
    );
}

// ---------------------------------------------------------------------------
// End-to-end fault injection: from TRH crossings to *served* corrupted data.
// The tests above state their verdicts in the TRH-crossing proxy; these close
// the causal chain — flips land in DRAM, a victim read is served the damage.
// ---------------------------------------------------------------------------

#[test]
fn every_shipped_attacker_corrupts_victim_data_on_the_undefended_baseline() {
    for spec in shipped_patterns() {
        // Run past the crossing so over-threshold hammering keeps flipping
        // bits while the victim sweeps the blast radius.
        let result =
            simulate_with_faults(DefenseKind::Baseline, spec.clone().run_to_cap(), 3_000_000);
        let integrity = result.integrity.expect("fault-model run carries an integrity report");
        assert!(
            integrity.bit_flips_injected > 0,
            "{}: over-threshold hammering must flip bits",
            spec.name
        );
        assert!(
            integrity.corrupted_reads > 0,
            "{}: a victim read of a flipped line must be served corrupted ({} flips landed)",
            spec.name,
            integrity.bit_flips_injected
        );
    }
}

#[test]
fn srs_and_scale_srs_serve_zero_corrupted_reads_at_paper_trh() {
    for spec in shipped_patterns() {
        for defense in [DefenseKind::Srs, DefenseKind::ScaleSrs] {
            let result = simulate_with_faults(defense, spec.clone().run_to_cap(), 3_000_000);
            let integrity = result.integrity.expect("fault-model run carries an integrity report");
            assert_eq!(
                integrity.bit_flips_injected, 0,
                "{} vs {defense}: no row may reach TRH, so no bit may flip",
                spec.name
            );
            assert_eq!(
                integrity.corrupted_reads, 0,
                "{} vs {defense}: no corrupted read may ever be served",
                spec.name
            );
        }
    }
}

#[test]
fn saturated_defense_structures_degrade_gracefully_and_are_reported() {
    // Shrink the refresh window so the Misra-Gries tables and the RIT are
    // provisioned for a tiny per-window activation budget, then drive a
    // wide uniform victim load plus the Juggernaut attacker through them.
    // The structures must saturate (skipped swaps, spilled counters), the
    // run must complete under the documented degraded contract — no panic,
    // no silent wraparound — and the saturation must surface on both the
    // security report and the armed telemetry counter.
    let mut config = attack_config(DefenseKind::Srs);
    config.cores = 4;
    config.dram.refresh_window_ns = 60_000;
    config.max_sim_ns = 2_000_000;
    config.telemetry.enabled = true;
    let juggernaut = shipped_patterns()
        .into_iter()
        .find(|spec| spec.name == "juggernaut")
        .expect("library ships juggernaut");
    config.attack = Some(juggernaut.run_to_cap());
    let trace = WorkloadSpec {
        name: "wide-uniform".to_string(),
        footprint_bytes: 1 << 26,
        base_addr: 1 << 32,
        read_fraction: 0.7,
        mean_gap: 10,
        pattern: AccessPattern::Uniform,
    }
    .generate(8_000, 7);
    let result = System::new(config, trace).run();
    assert!(result.instructions > 0, "the saturated run must make forward progress");
    let security = result.security.expect("attacked run carries a security report");
    assert!(
        security.saturation_events > 0,
        "a tiny activation budget under wide load must saturate the structures"
    );
    let telemetry = result.telemetry.expect("armed run carries a telemetry report");
    let counter = telemetry
        .counters
        .iter()
        .find(|(name, _)| name == "saturation_events")
        .map_or(0, |(_, value)| *value);
    assert_eq!(
        counter, security.saturation_events,
        "the telemetry counter must mirror the report field"
    );
}
