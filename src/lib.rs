//! # scale-srs
//!
//! A from-scratch Rust reproduction of *"Scalable and Secure Row-Swap:
//! Efficient and Safe Row Hammer Mitigation in Memory Systems"* (Woo,
//! Saileshwar, Nair — HPCA 2023).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`dram`] — the DDR4 memory system model (banks, timing, controller);
//! * [`cache`] — the cache hierarchy and the Scale-SRS LLC pin-buffer;
//! * [`cpu`] — the trace-driven out-of-order core model;
//! * [`trackers`] — the Misra-Gries and Hydra aggressor trackers;
//! * [`core`] — the row-swap defenses: RRS, SRS and Scale-SRS;
//! * [`attack`] — the Juggernaut / birthday / outlier attack models;
//! * [`workloads`] — trace format and synthetic workload generators;
//! * [`sim`] — the full-system simulator and experiment runner.
//!
//! ## Quick start
//!
//! ```
//! use scale_srs::attack::juggernaut;
//! use scale_srs::core::{MitigationConfig, RowSwapDefense, ScaleSrs};
//!
//! // Security: Juggernaut breaks RRS in hours but not SRS.
//! assert!(juggernaut::time_to_break_rrs_days(4800, 6) < 1.0);
//! assert!(juggernaut::time_to_break_srs_days(4800, 6) > 365.0);
//!
//! // Mitigation: a hammered row gets swapped away from its home location.
//! let mut defense = ScaleSrs::new(MitigationConfig::paper_default(1200, 3));
//! defense.on_mitigation_trigger(0, 42, 0);
//! assert_ne!(defense.translate(0, 42), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use srs_attack as attack;
pub use srs_cache as cache;
pub use srs_core as core;
pub use srs_cpu as cpu;
pub use srs_dram as dram;
pub use srs_sim as sim;
pub use srs_trackers as trackers;
pub use srs_workloads as workloads;

/// The version of the reproduction, mirroring the crate version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
